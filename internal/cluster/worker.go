package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"enmc/internal/core"
	"enmc/internal/distributed"
	"enmc/internal/telemetry"
)

var (
	mWorkerRequests   = telemetry.Default().Counter("cluster.worker.screen_requests")
	mWorkerItems      = telemetry.Default().Counter("cluster.worker.screen_items")
	mWorkerTraced     = telemetry.Default().Counter("cluster.worker.traced_requests")
	mWorkerBinaryReqs = telemetry.Default().Counter("cluster.worker.binary_requests")
	mWorkerBinaryResp = telemetry.Default().Counter("cluster.worker.binary_replies")
)

// Worker serves one shard's row-slice of the class space over HTTP:
// it screens locally with its own approximate screener, recomputes
// its local candidates exactly, and ships only the (class, logit)
// pairs back — the ENMC offload split at cluster scale.
//
// Endpoints:
//
//	POST /v1/shard/screen  — ScreenRequest in, ScreenResponse out
//	GET  /v1/shard/info    — shard geometry + model version
//	GET  /healthz          — liveness
//	GET  /readyz           — readiness (503 once Drain has begun;
//	                         the router's probe loop watches this)
type Worker struct {
	shard    distributed.Shard
	mux      *http.ServeMux
	draining atomic.Bool
	jsonWire atomic.Bool // -wire json: refuse the binary screen codec
	slo      *telemetry.SLO
	reqLog   atomic.Pointer[telemetry.RequestLog]
}

// NewWorker validates the shard and returns its HTTP worker.
func NewWorker(sh distributed.Shard) (*Worker, error) {
	if sh.Classifier == nil || sh.Screener == nil {
		return nil, fmt.Errorf("cluster: incomplete shard")
	}
	if sh.Offset < 0 {
		return nil, fmt.Errorf("cluster: negative shard offset %d", sh.Offset)
	}
	w := &Worker{shard: sh, slo: telemetry.NewSLO(telemetry.SLOConfig{})}
	w.mux = http.NewServeMux()
	w.mux.HandleFunc("/v1/shard/screen", w.handleScreen)
	w.mux.HandleFunc("/v1/shard/info", w.handleInfo)
	w.mux.HandleFunc("/v1/slo", w.handleSLO)
	w.mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		_, _ = rw.Write([]byte("ok\n"))
	})
	w.mux.HandleFunc("/readyz", w.handleReadyz)
	w.mux.Handle("/metrics", telemetry.PrometheusHandler(telemetry.Default(),
		func() { w.slo.Publish(telemetry.Default()) }))
	return w, nil
}

// SetRequestLog installs (or, with nil, removes) the worker's
// structured request logger. Safe to call while serving.
func (w *Worker) SetRequestLog(l *telemetry.RequestLog) {
	w.reqLog.Store(l)
}

// ForceJSONWire pins the worker to the JSON screen codec (-wire
// json): binary requests are refused with 415 so a binary-preferring
// router negotiates down, and replies are always JSON regardless of
// Accept. The tool for staging mixed-codec rolling upgrades and for
// emulating a pre-v2 worker in tests and smokes.
func (w *Worker) ForceJSONWire() { w.jsonWire.Store(true) }

// Handler returns the worker's HTTP handler wrapped in the worker's
// observability middleware (request-ID echo, SLO observation,
// request logging on /v1/* paths).
func (w *Worker) Handler() http.Handler { return w.instrument(w.mux) }

// instrument is the worker-side analogue of the server middleware:
// health probes and scrapes pass through, shard RPCs get a request
// ID echoed, an SLO observation, and a structured log record.
func (w *Worker) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(rw, r)
			return
		}
		start := time.Now()
		reqID := r.Header.Get(telemetry.HeaderRequestID)
		if reqID == "" {
			reqID = telemetry.NewRequestID()
		}
		rw.Header().Set(telemetry.HeaderRequestID, reqID)
		sr := &telemetry.StatusRecorder{ResponseWriter: rw}
		next.ServeHTTP(sr, r)
		latency := time.Since(start)
		w.slo.Observe(r.URL.Path, sr.Status(), latency)
		tc, _ := telemetry.ExtractTrace(r.Header)
		w.reqLog.Load().Log(telemetry.RequestEvent{
			RequestID:    reqID,
			TraceID:      tc.TraceID,
			Method:       r.Method,
			Path:         r.URL.Path,
			Status:       sr.Status(),
			Latency:      latency,
			ModelVersion: w.shard.Version,
		})
	})
}

// handleSLO reports the worker's rolling-window SLO: GET /v1/slo.
func (w *Worker) handleSLO(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(rw, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(rw, http.StatusOK, w.slo.Summary())
}

// Info returns the shard's wire identity, advertising which screen
// codecs this worker accepts (a pre-v2 worker's info simply lacks the
// field — the router treats absence as JSON-only on fallback).
func (w *Worker) Info() ShardInfo {
	codecs := []string{"v2", "json"}
	if w.jsonWire.Load() {
		codecs = []string{"json"}
	}
	return ShardInfo{
		Offset:  w.shard.Offset,
		Classes: w.shard.Classifier.Categories(),
		Hidden:  w.shard.Classifier.Hidden(),
		Version: w.shard.Version,
		Codecs:  codecs,
	}
}

// Drain fails readiness so the router's health probes eject this
// replica before the process exits; in-flight screens complete.
func (w *Worker) Drain() { w.draining.Store(true) }

func (w *Worker) handleReadyz(rw http.ResponseWriter, _ *http.Request) {
	if w.draining.Load() {
		rw.WriteHeader(http.StatusServiceUnavailable)
		_, _ = rw.Write([]byte("draining\n"))
		return
	}
	rw.WriteHeader(http.StatusOK)
	_, _ = rw.Write([]byte("ready\n"))
}

func (w *Worker) handleInfo(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(rw, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(rw, http.StatusOK, w.Info())
}

// handleScreen runs the shard-local screen→select→exact pipeline for
// every item in the batch on the core worker pool, honoring the
// request context so a router timeout aborts between items.
//
// Codec negotiation: the request's Content-Type selects the request
// decoder (application/json or the v2 binary frame), and the reply is
// binary exactly when the request's Accept lists the v2 type and the
// worker is not pinned to JSON (-wire json answers 415 to binary
// requests, which is what tells a binary-preferring router to fall
// back). Both decode paths read the body to EOF so the keep-alive
// connection is reusable, and the binary path decodes into a pooled
// scratch so the steady state allocates nothing.
func (w *Worker) handleScreen(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	mWorkerRequests.Inc()
	sc := GetWireScratch()
	defer sc.Release()

	var req ScreenRequest
	if strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeScreenV2) {
		if w.jsonWire.Load() {
			// Drain the (possibly multi-MB) frame before refusing it:
			// Go's server only auto-drains small remainders, so an
			// unread body would tear down the keep-alive connection the
			// router is about to reuse for the JSON retry.
			_, _ = io.Copy(io.Discard, io.LimitReader(r.Body, MaxFrameBytes))
			rw.Header().Set("Accept", ContentTypeJSON)
			writeError(rw, http.StatusUnsupportedMediaType, "binary screen codec disabled (-wire json); POST "+ContentTypeJSON)
			return
		}
		mWorkerBinaryReqs.Inc()
		frame, err := sc.ReadFrame(r.Body)
		if err != nil {
			writeError(rw, http.StatusBadRequest, "bad frame: "+err.Error())
			return
		}
		if n, _ := io.Copy(io.Discard, io.LimitReader(r.Body, 16)); n != 0 {
			writeError(rw, http.StatusBadRequest, "bad frame: trailing bytes after the length-prefixed frame")
			return
		}
		m, batch, err := DecodeScreenRequest(frame, sc)
		if err != nil {
			writeError(rw, http.StatusBadRequest, "bad frame: "+err.Error())
			return
		}
		req.M, req.Batch = m, batch
	} else {
		if err := json.NewDecoder(io.LimitReader(r.Body, MaxFrameBytes)).Decode(&req); err != nil {
			writeError(rw, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		// Drain the remainder (at least the encoder's trailing newline)
		// so the client's transport sees EOF and reuses the connection.
		_, _ = io.Copy(io.Discard, r.Body)
	}
	if len(req.Batch) == 0 {
		writeError(rw, http.StatusBadRequest, "empty batch")
		return
	}
	d := w.shard.Classifier.Hidden()
	for i, h := range req.Batch {
		if len(h) != d {
			writeError(rw, http.StatusBadRequest,
				fmt.Sprintf("item %d: feature length %d, want %d", i, len(h), d))
			return
		}
	}
	m := req.M
	if m < 1 {
		m = 1
	}
	if l := w.shard.Classifier.Categories(); m > l {
		m = l
	}

	resp := ScreenResponse{
		Offset:  w.shard.Offset,
		Classes: w.shard.Classifier.Categories(),
		Version: w.shard.Version,
		Items:   sc.growItems(len(req.Batch)),
	}
	// One flat candidate arena for the whole reply: item i owns the
	// disjoint region [i*m, (i+1)*m), so the concurrent visit callbacks
	// below never share bytes and the per-item `make` is gone.
	flat := sc.growCands(len(req.Batch) * m)

	// Trace propagation: when the router shipped a trace context, the
	// screen pipeline records into a fresh per-request tracer whose
	// epoch is request receipt — its span ticks are relative by
	// construction, so they return on the wire for the router to
	// rebase under this RPC's span (no clock sync; see SpanWire).
	// Untraced requests keep the zero-overhead global-tracer path.
	tc, traced := telemetry.ExtractTrace(r.Header)
	tr := telemetry.Global()
	if traced {
		mWorkerTraced.Inc()
		tr = telemetry.NewTracer()
	}
	reqStart := tr.Now()
	err := core.ClassifyBatchVisitCtx(r.Context(), w.shard.Classifier, w.shard.Screener,
		req.Batch, core.TopM(m), tr,
		func(i int, res *core.Result, _ *core.Scratch) {
			cands := flat[i*m : i*m+len(res.Candidates) : i*m+m]
			for j, c := range res.Candidates {
				cands[j] = WireCandidate{Class: w.shard.Offset + c, Logit: res.Exact[j]}
			}
			resp.Items[i] = cands
		})
	if err != nil {
		// Router gave up (timeout/cancel): the reply will not be read.
		writeError(rw, http.StatusGatewayTimeout, err.Error())
		return
	}
	if traced {
		tr.Add(telemetry.Span{
			Name: fmt.Sprintf("shard screen ×%d", len(req.Batch)), Cat: "shard",
			TID: telemetry.TrackPipeline, Start: reqStart, Dur: tr.Now() - reqStart,
			Trace: tc.TraceID,
		})
		for _, sp := range tr.Spans() {
			resp.Spans = append(resp.Spans, SpanWire{
				Name: sp.Name, Cat: sp.Cat, TID: sp.TID, Start: sp.Start, Dur: sp.Dur,
			})
		}
	}
	mWorkerItems.Add(int64(len(req.Batch)))
	if !w.jsonWire.Load() && strings.Contains(r.Header.Get("Accept"), ContentTypeScreenV2) {
		mWorkerBinaryResp.Inc()
		buf, encErr := AppendScreenResponse(GetEncodeBuf(), &resp)
		if encErr != nil {
			writeError(rw, http.StatusInternalServerError, encErr.Error())
			return
		}
		rw.Header().Set("Content-Type", ContentTypeScreenV2)
		rw.Header().Set("Content-Length", strconv.Itoa(len(buf)))
		rw.WriteHeader(http.StatusOK)
		_, _ = rw.Write(buf)
		PutEncodeBuf(buf)
		return
	}
	writeJSON(rw, http.StatusOK, resp)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(rw http.ResponseWriter, code int, msg string) {
	writeJSON(rw, code, errorBody{Error: msg})
}

func writeJSON(rw http.ResponseWriter, code int, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(v)
}
