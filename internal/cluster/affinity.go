package cluster

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"enmc/internal/decode"
	"enmc/internal/telemetry"
)

var mSessionRepin = telemetry.Default().Counter("cluster.session_repin")

// Affinity is one decode session's sticky session→replica mapping:
// for each shard, the replica that served the session last. Pinning
// matters at decode scale — a session screens every token, and
// without stickiness each token re-scatters across the replica set,
// defeating any per-replica warmth (connection, page cache, and —
// once workers cache per-session state — everything else). The pin is
// advisory: the pinned replica is simply ordered first in the shard's
// failover sequence, so when it dies the normal failover path answers
// from another replica and the session re-pins there (counted by
// cluster.session_repin). Failover therefore costs one slow token,
// never a dropped stream.
type Affinity struct {
	pins []atomic.Int32 // per shard: replica index, -1 unpinned
}

// NewAffinity returns an unpinned affinity for this router's
// geometry. One per decode session.
func (r *Router) NewAffinity() *Affinity {
	a := &Affinity{pins: make([]atomic.Int32, len(r.shards))}
	for i := range a.pins {
		a.pins[i].Store(-1)
	}
	return a
}

func (a *Affinity) pin(shard int) int {
	if a == nil || shard >= len(a.pins) {
		return -1
	}
	return int(a.pins[shard].Load())
}

// record notes which replica answered for a shard, counting a re-pin
// when an established pin moved (first pins are free).
func (a *Affinity) record(shard, replica int) {
	if a == nil || shard >= len(a.pins) {
		return
	}
	prev := a.pins[shard].Swap(int32(replica))
	if prev >= 0 && int(prev) != replica {
		mSessionRepin.Inc()
	}
}

// Pins returns the current pin vector (testing/debug).
func (a *Affinity) Pins() []int {
	out := make([]int, len(a.pins))
	for i := range a.pins {
		out[i] = int(a.pins[i].Load())
	}
	return out
}

// DecodeScorer adapts the router to decode.Scorer: every token's
// screen fans out across the shards with the session's affinity, and
// the merged global top-k becomes the step score. This is the NMPO
// offload boundary applied per token — the decoder hidden state stays
// on the serving host, only (class, logit) survivor pairs cross the
// wire each step, and the session never ships its state to a worker.
//
// The log-probabilities are computed over the merged candidate pool
// only (the router never sees the full logit vector), i.e. a softmax
// that ignores the screened-out tail mass. Rankings are unaffected —
// candidates carry exact logits — so greedy and beam token choices
// match what a single node with the same global top-k would pick.
type DecodeScorer struct {
	r   *Router
	aff *Affinity

	batch   [][]float32
	classes []int
	lps     []float64
}

// NewDecodeScorer builds a per-session scorer with a fresh affinity.
func (r *Router) NewDecodeScorer() *DecodeScorer {
	return &DecodeScorer{r: r, aff: r.NewAffinity(), batch: make([][]float32, 1)}
}

// Affinity exposes the session's pin state (testing/smoke).
func (ds *DecodeScorer) Affinity() *Affinity { return ds.aff }

// ScoreStep implements decode.Scorer.
func (ds *DecodeScorer) ScoreStep(ctx context.Context, h []float32, m, k int) (decode.StepScore, error) {
	if k < 1 {
		k = 1
	}
	ds.batch[0] = h
	outs, _, err := ds.r.classifyBatchAffine(ctx, ds.batch, m, k, ds.aff)
	ds.batch[0] = nil
	if err != nil {
		return decode.StepScore{}, err
	}
	topk := outs[0].TopK
	if len(topk) == 0 {
		return decode.StepScore{}, fmt.Errorf("cluster: decode step merged zero candidates")
	}
	if cap(ds.classes) < len(topk) {
		ds.classes = make([]int, len(topk))
		ds.lps = make([]float64, len(topk))
	}
	classes, lps := ds.classes[:len(topk)], ds.lps[:len(topk)]
	// Log-sum-exp over the candidate pool, anchored at the max for
	// stability.
	maxZ := float64(topk[0].Logit)
	for _, c := range topk[1:] {
		if z := float64(c.Logit); z > maxZ {
			maxZ = z
		}
	}
	var sum float64
	for _, c := range topk {
		sum += math.Exp(float64(c.Logit) - maxZ)
	}
	lse := maxZ + math.Log(sum)
	for i, c := range topk {
		classes[i] = c.Class
		lps[i] = float64(c.Logit) - lse
	}
	return decode.StepScore{Classes: classes, LogProbs: lps, M: m}, nil
}

// Close implements decode.Scorer; the scorer holds no pooled state.
func (ds *DecodeScorer) Close() {}
