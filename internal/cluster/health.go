package cluster

import (
	"context"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// probeLoop is the per-replica health state machine. The replica
// starts admitted (optimistic); FailThreshold consecutive failed
// /readyz probes eject it, ReadmitThreshold consecutive successes
// re-admit it. Ejection only changes failover ORDER — the data path
// still falls back to ejected replicas once the healthy ones are
// exhausted — so a probe-lag window can degrade latency but never
// availability.
func (r *Router) probeLoop(s *routerShard, rep *replica) {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.HealthInterval)
	defer ticker.Stop()
	fails, succs := 0, 0
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			if r.probeOnce(rep) {
				fails = 0
				succs++
				if !rep.healthy.Load() && succs >= r.cfg.ReadmitThreshold {
					rep.healthy.Store(true)
					// A readmitted replica may be a restarted — possibly
					// upgraded — process: clear any JSON-codec pin so the
					// next query re-offers the binary frame (rpcOnce
					// re-pins in one round trip if it still refuses).
					rep.jsonOnly.Store(false)
					mReplicaReadmit.Inc()
					mShardsHealthy.Set(float64(r.HealthyShards()))
				}
			} else {
				succs = 0
				fails++
				if rep.healthy.Load() && fails >= r.cfg.FailThreshold {
					rep.healthy.Store(false)
					mReplicaEjected.Inc()
					mShardsHealthy.Set(float64(r.HealthyShards()))
				}
			}
		}
	}
}

// probeOnce is a single readiness probe: a 200 from /readyz within
// HealthTimeout. A draining worker answers 503, so graceful
// shutdowns eject through the same path as crashes.
func (r *Router) probeOnce(rep *replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// latWindow is a fixed-size sliding window of observed RPC
// latencies feeding the adaptive hedge delay. Writes are frequent
// and cheap (mutex + ring slot); quantile reads copy the window.
type latWindow struct {
	mu   sync.Mutex
	buf  [64]time.Duration
	n    int // filled entries (≤ len(buf))
	next int // ring cursor
}

func (w *latWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// quantile returns the q-quantile of the window, or 0 when empty
// (callers treat 0 as "no estimate yet").
func (w *latWindow) quantile(q float64) time.Duration {
	w.mu.Lock()
	n := w.n
	tmp := make([]time.Duration, n)
	copy(tmp, w.buf[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] < tmp[b] })
	idx := int(q * float64(n-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return tmp[idx]
}
