package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"enmc/internal/core"
	"enmc/internal/distributed"
	"enmc/internal/quant"
	"enmc/internal/server"
	"enmc/internal/workload"
)

// --- shared fixture: one global model split into 3 shards ---

const (
	fixShards  = 3
	fixClasses = 90 // divisible by fixShards: every shard gets 30 rows
	fixHidden  = 32
)

var (
	fixOnce sync.Once
	fix     struct {
		inst   *workload.Instance
		shards []distributed.Shard
		global *core.Screener
	}
)

func fixture(t testing.TB) (*workload.Instance, []distributed.Shard, *core.Screener) {
	t.Helper()
	fixOnce.Do(func() {
		spec := workload.Spec{Name: "cluster", Categories: fixClasses, Hidden: fixHidden, LatentRank: 8, ZipfS: 1}
		fix.inst = workload.Generate(spec, workload.GenOptions{Seed: 11, Train: 96, Valid: 8, Test: 8})
		cfg := core.Config{Categories: fixClasses, Hidden: fixHidden, Reduced: 8, Precision: quant.INT4, Seed: 5}
		opt := core.TrainOptions{Epochs: 3, Seed: 6}
		shards, err := distributed.ShardClassifier(fix.inst.Classifier, fixShards, fix.inst.Train, cfg, opt)
		if err != nil {
			panic(err)
		}
		for i := range shards {
			shards[i].Version = "vtest"
		}
		fix.shards = shards
		scr, _, err := core.TrainScreener(fix.inst.Classifier, fix.inst.Train, cfg, opt)
		if err != nil {
			panic(err)
		}
		fix.global = scr
	})
	return fix.inst, fix.shards, fix.global
}

// startWorkers serves each shard from `replicas` httptest servers
// (replicas of one shard share the worker, like processes loading the
// same artifact) and returns the shard map plus the servers indexed
// [shard][replica]. wrap, when non-nil, wraps every replica handler.
func startWorkers(t *testing.T, shards []distributed.Shard, replicas int, wrap func(shard, rep int, h http.Handler) http.Handler) ([][]string, [][]*httptest.Server) {
	t.Helper()
	urls := make([][]string, len(shards))
	srvs := make([][]*httptest.Server, len(shards))
	for i, sh := range shards {
		w, err := NewWorker(sh)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < replicas; rep++ {
			h := http.Handler(w.Handler())
			if wrap != nil {
				h = wrap(i, rep, h)
			}
			srv := httptest.NewServer(h)
			t.Cleanup(srv.Close)
			urls[i] = append(urls[i], srv.URL)
			srvs[i] = append(srvs[i], srv)
		}
	}
	return urls, srvs
}

func dialT(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1 // probes off unless a test wants them
	}
	r, err := Dial(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// assertOutcome checks a router outcome against the expected ranked
// candidates, bit-for-bit.
func assertOutcome(t *testing.T, item int, got server.Outcome, want []distributed.Candidate) {
	t.Helper()
	if len(got.TopK) != len(want) {
		t.Fatalf("item %d: top-k length %d, want %d (%+v vs %+v)", item, len(got.TopK), len(want), got.TopK, want)
	}
	for i := range want {
		if got.TopK[i].Class != want[i].Class || got.TopK[i].Logit != want[i].Logit {
			t.Fatalf("item %d: top-k[%d] = (%d, %v), want (%d, %v)",
				item, i, got.TopK[i].Class, got.TopK[i].Logit, want[i].Class, want[i].Logit)
		}
	}
	if len(want) > 0 && got.Class != want[0].Class {
		t.Fatalf("item %d: class %d, want %d", item, got.Class, want[0].Class)
	}
}

// stall never answers a screen request: it drains the body (so the
// server's background read can detect the client hanging up) and
// blocks until the router abandons the attempt or the test tears
// down. The drain matters — with the body unread, net/http does not
// watch the connection, and req.Context() would never fire.
func stall(req *http.Request, stop <-chan struct{}) {
	_, _ = io.Copy(io.Discard, req.Body)
	select {
	case <-req.Context().Done():
	case <-stop:
	}
}

// --- wire / parsing ---

func TestParseShardMap(t *testing.T) {
	sm, err := ParseShardMap("10.0.0.1:9001, 10.0.0.2:9001 ; https://x.example/ ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(sm) != 2 || len(sm[0]) != 2 || len(sm[1]) != 1 {
		t.Fatalf("shape = %v", sm)
	}
	if sm[0][0] != "http://10.0.0.1:9001" || sm[0][1] != "http://10.0.0.2:9001" {
		t.Fatalf("shard 0 = %v", sm[0])
	}
	if sm[1][0] != "https://x.example" {
		t.Fatalf("shard 1 = %v", sm[1])
	}
	if _, err := ParseShardMap(" ; "); err == nil {
		t.Fatal("empty spec accepted")
	}
}

// --- worker endpoint behavior ---

func TestWorkerEndpoints(t *testing.T) {
	_, shards, _ := fixture(t)
	w, err := NewWorker(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	get := func(path string) *http.Response {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	post := func(path, body string) *http.Response {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	info, err := fetchInfo(context.Background(), http.DefaultClient, srv.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Offset != 0 || info.Classes != fixClasses/fixShards || info.Hidden != fixHidden || info.Version != "vtest" {
		t.Fatalf("info = %+v", info)
	}

	if c := get("/healthz").StatusCode; c != http.StatusOK {
		t.Fatalf("healthz = %d", c)
	}
	if c := get("/readyz").StatusCode; c != http.StatusOK {
		t.Fatalf("readyz = %d", c)
	}
	if c := get("/v1/shard/screen").StatusCode; c != http.StatusMethodNotAllowed {
		t.Fatalf("GET screen = %d", c)
	}
	if c := post("/v1/shard/screen", "{").StatusCode; c != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", c)
	}
	if c := post("/v1/shard/screen", `{"batch":[],"m":3}`).StatusCode; c != http.StatusBadRequest {
		t.Fatalf("empty batch = %d", c)
	}
	if c := post("/v1/shard/screen", `{"batch":[[1,2,3]],"m":3}`).StatusCode; c != http.StatusBadRequest {
		t.Fatalf("wrong dim = %d", c)
	}

	// Drain fails readiness but not liveness.
	w.Drain()
	if c := get("/readyz").StatusCode; c != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d", c)
	}
	if c := get("/healthz").StatusCode; c != http.StatusOK {
		t.Fatalf("healthz while draining = %d", c)
	}
}

// --- end-to-end: scatter-gather merge is bit-identical ---

// TestRouterMatchesInProcess: with every shard healthy, the networked
// router's merged top-k must be bit-identical to the in-process
// scatter over the SAME shards and per-shard budget, and — at full
// screening budget, where approximation vanishes — bit-identical to
// single-node core.ClassifyApprox over the global model.
func TestRouterMatchesInProcess(t *testing.T) {
	inst, shards, global := fixture(t)
	urls, _ := startWorkers(t, shards, 1, nil)
	r := dialT(t, RouterConfig{ShardMap: urls})

	if r.Hidden() != fixHidden || r.Categories() != fixClasses || r.Shards() != fixShards {
		t.Fatalf("geometry: hidden %d classes %d shards %d", r.Hidden(), r.Categories(), r.Shards())
	}
	if v := r.ModelVersion(); v != "vtest" {
		t.Fatalf("version = %q", v)
	}
	if r.VersionSkew() {
		t.Fatal("uniform cluster reports skew")
	}

	ctx := context.Background()
	batch := inst.Test[:4]
	const m, topK = 24, 5
	outs, p, err := r.ClassifyBatchPartial(ctx, batch, m, topK)
	if err != nil {
		t.Fatal(err)
	}
	if p.Partial || len(p.MissingShards) != 0 {
		t.Fatalf("healthy cluster reported partial %+v", p)
	}
	per := (m + fixShards - 1) / fixShards
	for i, h := range batch {
		want, err := distributed.ClassifyCtx(ctx, shards, h, per, topK)
		if err != nil {
			t.Fatal(err)
		}
		assertOutcome(t, i, outs[i], want)
	}

	// Full budget: every shard ships its whole slice exactly, so the
	// router's top-k must equal the single-node exact top-k
	// core.ClassifyApprox produces when screening keeps everything.
	outs, _, err = r.ClassifyBatchPartial(ctx, batch, fixClasses, topK)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range batch {
		res := core.ClassifyApprox(inst.Classifier, global, h, core.TopM(fixClasses))
		pool := make([]distributed.Candidate, len(res.Candidates))
		for j, c := range res.Candidates {
			pool[j] = distributed.Candidate{Class: c, Logit: res.Exact[j]}
		}
		assertOutcome(t, i, outs[i], distributed.Merge(pool, topK))
	}
}

// TestRouterPartialOnShardDown: killing every replica of one shard
// must degrade, not fail — the reply is the correctly-merged top-k of
// the surviving shards, flagged partial with the dead shard listed.
func TestRouterPartialOnShardDown(t *testing.T) {
	inst, shards, _ := fixture(t)
	urls, srvs := startWorkers(t, shards, 2, nil)
	r := dialT(t, RouterConfig{ShardMap: urls, Timeout: 2 * time.Second})

	partialBefore := mPartialResponses.Value()
	for _, srv := range srvs[1] { // both replicas of shard 1
		srv.Close()
	}

	ctx := context.Background()
	batch := inst.Test[:3]
	const m, topK = 24, 5
	outs, p, err := r.ClassifyBatchPartial(ctx, batch, m, topK)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Partial || len(p.MissingShards) != 1 || p.MissingShards[0] != 1 {
		t.Fatalf("partial = %+v, want shard 1 missing", p)
	}
	if mPartialResponses.Value() <= partialBefore {
		t.Fatal("partial_responses counter did not advance")
	}
	// The surviving merge must equal the in-process scatter over the
	// surviving shards with the SAME per-shard budget (the router
	// still divides m by the full shard count).
	per := (m + fixShards - 1) / fixShards
	surviving := []distributed.Shard{shards[0], shards[2]}
	for i, h := range batch {
		want, err := distributed.Classify(surviving, h, per, topK)
		if err != nil {
			t.Fatal(err)
		}
		assertOutcome(t, i, outs[i], want)
	}

	// ClassifyBatch (plain Backend surface) serves the same degraded
	// answer with the flag dropped.
	if _, err := r.ClassifyBatch(ctx, batch, m, topK); err != nil {
		t.Fatalf("ClassifyBatch on partial cluster: %v", err)
	}
}

// TestRouterAllShardsDown: when no shard has a reachable replica the
// query errors rather than returning an empty merge.
func TestRouterAllShardsDown(t *testing.T) {
	inst, shards, _ := fixture(t)
	urls, srvs := startWorkers(t, shards, 1, nil)
	r := dialT(t, RouterConfig{ShardMap: urls})
	for _, group := range srvs {
		for _, srv := range group {
			srv.Close()
		}
	}
	_, _, err := r.ClassifyBatchPartial(context.Background(), inst.Test[:1], 12, 3)
	if err == nil {
		t.Fatal("all-shards-down returned no error")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v", err)
	}
}

// TestRouterFailover: a dead first replica must fail over to the live
// one within a single query — no probe loop involved.
func TestRouterFailover(t *testing.T) {
	inst, shards, _ := fixture(t)
	urls, srvs := startWorkers(t, shards, 2, nil)
	// Kill replica 0 of every shard; replica order for the first query
	// starts at the round-robin cursor 0, so attempt 1 hits the corpse.
	for _, group := range srvs {
		group[0].Close()
	}
	r := dialT(t, RouterConfig{ShardMap: urls, Timeout: 2 * time.Second})

	failBefore := mFailoverTotal.Value()
	errBefore := mShardRPCErrors.Value()
	outs, p, err := r.ClassifyBatchPartial(context.Background(), inst.Test[:2], 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Partial {
		t.Fatalf("failover degraded to partial: %+v", p)
	}
	per := (24 + fixShards - 1) / fixShards
	for i, h := range inst.Test[:2] {
		want, err := distributed.Classify(shards, h, per, 5)
		if err != nil {
			t.Fatal(err)
		}
		assertOutcome(t, i, outs[i], want)
	}
	if mFailoverTotal.Value() <= failBefore {
		t.Fatal("failover_total did not advance")
	}
	if mShardRPCErrors.Value() <= errBefore {
		t.Fatal("shard_rpc_errors did not advance")
	}
}

// TestRouterRetrySameReplica: a single-replica shard gets a bounded
// same-replica retry (MaxAttempts cycles the one-entry order), so a
// transient 500 does not degrade the response.
func TestRouterRetrySameReplica(t *testing.T) {
	inst, shards, _ := fixture(t)
	var flaked sync.Map // shard → true once it has already failed one screen
	urls, _ := startWorkers(t, shards, 1, func(shard, _ int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
			if req.URL.Path == "/v1/shard/screen" {
				if _, loaded := flaked.LoadOrStore(shard, true); !loaded {
					http.Error(rw, "transient", http.StatusInternalServerError)
					return
				}
			}
			h.ServeHTTP(rw, req)
		})
	})
	r := dialT(t, RouterConfig{ShardMap: urls, MaxAttempts: 2})

	outs, p, err := r.ClassifyBatchPartial(context.Background(), inst.Test[:1], 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Partial {
		t.Fatalf("retryable failure degraded to partial: %+v", p)
	}
	per := (24 + fixShards - 1) / fixShards
	want, err := distributed.Classify(shards, inst.Test[0], per, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertOutcome(t, 0, outs[0], want)
}

// TestRouterHedge: when the first replica stalls, the hedge timer
// must launch the second replica and its answer must win well before
// the stalled attempt's timeout.
func TestRouterHedge(t *testing.T) {
	inst, shards, _ := fixture(t)
	stop := make(chan struct{})
	urls, _ := startWorkers(t, shards, 2, func(_, rep int, h http.Handler) http.Handler {
		if rep != 0 {
			return h
		}
		return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
			if req.URL.Path == "/v1/shard/screen" {
				stall(req, stop)
				return
			}
			h.ServeHTTP(rw, req)
		})
	})
	// LIFO cleanup: registered after startWorkers, so the stalled
	// handlers unblock before httptest's Close waits on them.
	t.Cleanup(func() { close(stop) })
	r := dialT(t, RouterConfig{ShardMap: urls, Timeout: 10 * time.Second, HedgeAfter: 15 * time.Millisecond, MaxAttempts: 2})

	hedgeBefore := mHedgeFired.Value()
	start := time.Now()
	outs, p, err := r.ClassifyBatchPartial(context.Background(), inst.Test[:1], 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedge did not preempt the stalled replica (took %s)", elapsed)
	}
	if p.Partial {
		t.Fatalf("hedged query degraded to partial: %+v", p)
	}
	if mHedgeFired.Value() <= hedgeBefore {
		t.Fatal("hedge_fired did not advance")
	}
	per := (24 + fixShards - 1) / fixShards
	want, err := distributed.Classify(shards, inst.Test[0], per, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertOutcome(t, 0, outs[0], want)
}

// TestRouterHealthEjectAndReadmit drives the per-replica probe state
// machine: consecutive readiness failures eject, consecutive
// successes re-admit — and an ejected replica is still reachable as a
// last resort, so a fully-ejected shard keeps serving.
func TestRouterHealthEjectAndReadmit(t *testing.T) {
	inst, shards, _ := fixture(t)
	var down sync.Map // shard index → readiness off
	urls, _ := startWorkers(t, shards, 1, func(shard, _ int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
			if req.URL.Path == "/readyz" {
				if _, off := down.Load(shard); off {
					http.Error(rw, "not ready", http.StatusServiceUnavailable)
					return
				}
			}
			h.ServeHTTP(rw, req)
		})
	})
	r := dialT(t, RouterConfig{
		ShardMap:         urls,
		HealthInterval:   10 * time.Millisecond,
		HealthTimeout:    500 * time.Millisecond,
		FailThreshold:    2,
		ReadmitThreshold: 2,
	})
	if got := r.HealthyShards(); got != fixShards {
		t.Fatalf("healthy shards at start = %d", got)
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	ejectBefore := mReplicaEjected.Value()
	readmitBefore := mReplicaReadmit.Value()
	down.Store(0, true)
	waitFor("ejection", func() bool { return r.HealthyShards() == fixShards-1 })
	if mReplicaEjected.Value() <= ejectBefore {
		t.Fatal("replica_ejected did not advance")
	}

	// Ejection reorders failover; it must not black-hole the shard —
	// /readyz is down but /v1/shard/screen still answers.
	outs, p, err := r.ClassifyBatchPartial(context.Background(), inst.Test[:1], 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Partial {
		t.Fatalf("ejected-but-alive shard degraded to partial: %+v", p)
	}
	if len(outs[0].TopK) == 0 {
		t.Fatal("empty top-k")
	}

	down.Delete(0)
	waitFor("re-admission", func() bool { return r.HealthyShards() == fixShards })
	if mReplicaReadmit.Value() <= readmitBefore {
		t.Fatal("replica_readmitted did not advance")
	}
}

// TestRouterCancellation: a context cancelled mid-scatter surfaces
// ctx.Err(), not a partial result.
func TestRouterCancellation(t *testing.T) {
	inst, shards, _ := fixture(t)
	stop := make(chan struct{})
	urls, _ := startWorkers(t, shards, 1, func(_, _ int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
			if req.URL.Path == "/v1/shard/screen" {
				stall(req, stop)
				return
			}
			h.ServeHTTP(rw, req)
		})
	})
	t.Cleanup(func() { close(stop) })
	r := dialT(t, RouterConfig{ShardMap: urls, Timeout: 10 * time.Second, MaxAttempts: 1})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, _, err := r.ClassifyBatchPartial(ctx, inst.Test[:1], 12, 3)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDialValidation: a shard map whose row slices leave a gap (or
// with no reachable replica) must be rejected at Dial, before any
// query can silently lose classes.
func TestDialValidation(t *testing.T) {
	_, shards, _ := fixture(t)
	urls, _ := startWorkers(t, shards, 1, nil)

	// Gap: shards 0 and 2 without 1.
	if _, err := Dial(context.Background(), RouterConfig{
		ShardMap:       [][]string{urls[0], urls[2]},
		HealthInterval: -1,
	}); err == nil || !strings.Contains(err.Error(), "tile") {
		t.Fatalf("gapped shard map: err = %v", err)
	}
	// Overlap: the same slice listed as two shards.
	if _, err := Dial(context.Background(), RouterConfig{
		ShardMap:       [][]string{urls[0], urls[0], urls[1], urls[2]},
		HealthInterval: -1,
	}); err == nil || !strings.Contains(err.Error(), "tile") {
		t.Fatalf("overlapping shard map: err = %v", err)
	}
	// Unreachable shard.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	if _, err := Dial(context.Background(), RouterConfig{
		ShardMap:       [][]string{{dead.URL}},
		HealthInterval: -1,
		Timeout:        200 * time.Millisecond,
	}); err == nil || !strings.Contains(err.Error(), "no replica reachable") {
		t.Fatalf("unreachable shard: err = %v", err)
	}
	if _, err := Dial(context.Background(), RouterConfig{HealthInterval: -1}); err == nil {
		t.Fatal("empty shard map accepted")
	}
}

// --- adversarial wire replies (stub shards, no real model) ---

// stubShard is a hand-rolled shard endpoint that replies with a fixed
// candidate list for every batch item — the tool for testing the
// router against replies a correct worker would never send.
func stubShard(t *testing.T, info ShardInfo, cands []WireCandidate) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/shard/info", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, http.StatusOK, info)
	})
	mux.HandleFunc("/readyz", func(rw http.ResponseWriter, _ *http.Request) { rw.WriteHeader(http.StatusOK) })
	mux.HandleFunc("/v1/shard/screen", func(rw http.ResponseWriter, req *http.Request) {
		var sr ScreenRequest
		if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
			writeError(rw, http.StatusBadRequest, err.Error())
			return
		}
		items := make([][]WireCandidate, len(sr.Batch))
		for i := range items {
			items[i] = cands
		}
		writeJSON(rw, http.StatusOK, ScreenResponse{
			Offset: info.Offset, Classes: info.Classes, Version: info.Version, Items: items,
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestRouterDedupesOverlappingReplies: a shard replying with a class
// outside its slice (a lying worker) must not double-count — the
// merge keeps one entry per class, at its highest logit.
func TestRouterDedupesOverlappingReplies(t *testing.T) {
	a := stubShard(t, ShardInfo{Offset: 0, Classes: 2, Hidden: 3, Version: "v1"},
		[]WireCandidate{{Class: 3, Logit: 9}, {Class: 0, Logit: 1}}) // class 3 is shard B's row
	b := stubShard(t, ShardInfo{Offset: 2, Classes: 2, Hidden: 3, Version: "v2"},
		[]WireCandidate{{Class: 3, Logit: 1}, {Class: 2, Logit: 5}})
	r := dialT(t, RouterConfig{ShardMap: [][]string{{a}, {b}}})

	outs, p, err := r.ClassifyBatchPartial(context.Background(), [][]float32{{1, 2, 3}}, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Partial {
		t.Fatalf("partial = %+v", p)
	}
	assertOutcome(t, 0, outs[0], []distributed.Candidate{{Class: 3, Logit: 9}, {Class: 2, Logit: 5}, {Class: 0, Logit: 1}})

	// Mixed versions across shards = rolling update in flight.
	if v := r.ModelVersion(); v != "v1,v2" {
		t.Fatalf("ModelVersion = %q", v)
	}
	if !r.VersionSkew() {
		t.Fatal("skewed cluster reports no skew")
	}
}

// TestRouterEmptyShardReply: a shard replying with zero candidates
// contributes nothing — the merge is the other shards' candidates,
// and the response is NOT partial (the shard answered).
func TestRouterEmptyShardReply(t *testing.T) {
	a := stubShard(t, ShardInfo{Offset: 0, Classes: 2, Hidden: 3},
		[]WireCandidate{{Class: 1, Logit: 4}})
	b := stubShard(t, ShardInfo{Offset: 2, Classes: 2, Hidden: 3}, []WireCandidate{})
	r := dialT(t, RouterConfig{ShardMap: [][]string{{a}, {b}}})

	outs, p, err := r.ClassifyBatchPartial(context.Background(), [][]float32{{1, 2, 3}}, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Partial {
		t.Fatalf("empty reply marked partial: %+v", p)
	}
	assertOutcome(t, 0, outs[0], []distributed.Candidate{{Class: 1, Logit: 4}})
}
