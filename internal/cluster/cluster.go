// Package cluster turns the in-process row-sharded decomposition of
// internal/distributed into a multi-process serving topology: shard
// workers (cmd/enmc-shard) each own a contiguous row-slice of the
// class space and expose a compact HTTP/JSON shard API, while a
// Router scatter-gathers every query across all shards concurrently
// and merges the global top-k.
//
// The wire protocol is the paper's scale-out sketch made concrete:
// each node keeps an approximate screener, screens its slice
// locally, recomputes its local candidates exactly, and ships only
// the (class, logit) candidate pairs — never raw logit vectors — so
// the gather traffic per shard is O(m) instead of O(l/n), exactly
// the host/near-memory offload split ENMC argues for (screen where
// the data lives, move only what survived screening).
//
// The Router is production-shaped, not a toy fan-out: a static shard
// map with R replicas per shard, per-replica health probing with
// consecutive-failure ejection and re-admission, per-attempt
// timeouts with bounded retry-then-failover across replicas, hedged
// requests after an observed latency quantile, and partial-failure
// degradation — when every replica of a shard is down the merged
// top-k of the surviving shards is served with the response marked
// partial instead of failing the query.
package cluster

import (
	"fmt"
	"strings"

	"enmc/internal/telemetry"
)

// Telemetry instruments on the default registry. shard_rpc_total
// counts attempts (including hedges and failover retries), so
// shard_rpc_total - hedge_fired - failover_total approximates the
// first-attempt rate.
var (
	mShardRPCTotal    = telemetry.Default().Counter("cluster.shard_rpc_total")
	mShardRPCErrors   = telemetry.Default().Counter("cluster.shard_rpc_errors")
	mHedgeFired       = telemetry.Default().Counter("cluster.hedge_fired")
	mFailoverTotal    = telemetry.Default().Counter("cluster.failover_total")
	mPartialResponses = telemetry.Default().Counter("cluster.partial_responses")
	mShardsHealthy    = telemetry.Default().Gauge("cluster.shards_healthy")
	mReplicaEjected   = telemetry.Default().Counter("cluster.replica_ejected")
	mReplicaReadmit   = telemetry.Default().Counter("cluster.replica_readmitted")
	mRPCNs            = telemetry.Default().Histogram("cluster.shard_rpc_ns", telemetry.LatencyBuckets())

	// Wire codec negotiation (see codec.go): RPCs by reply codec, and
	// how often a binary attempt had to renegotiate down to JSON
	// (pre-v2 worker, or a worker pinned by -wire json).
	mWireBinaryRPCs = telemetry.Default().Counter("cluster.wire_binary_rpcs")
	mWireJSONRPCs   = telemetry.Default().Counter("cluster.wire_json_rpcs")
	mWireFallbacks  = telemetry.Default().Counter("cluster.wire_fallback_total")
)

// --- wire format (/v1/shard/*) ---

// WireCandidate is one exact (class, logit) pair in GLOBAL class
// numbering — the only payload that crosses the gather wire. Keys
// are single letters because a reply carries shards×m of these.
type WireCandidate struct {
	Class int     `json:"c"`
	Logit float32 `json:"l"`
}

// ScreenRequest is the POST /v1/shard/screen body: a batch of hidden
// vectors plus the per-shard screening budget m.
type ScreenRequest struct {
	Batch [][]float32 `json:"batch"`
	M     int         `json:"m"`
}

// ScreenResponse is the shard's reply: for every batch item, its
// exact top-m local candidates in global numbering, plus the shard's
// identity so the router can detect a mis-wired shard map and
// version skew mid-rolling-update. Spans is only populated when the
// request carried a trace context (X-Enmc-Trace-Id): the worker's
// screen/select/exact spans for this request, ticks relative to
// request receipt, so the router can rebase them under its own RPC
// span without any cross-host clock agreement.
type ScreenResponse struct {
	Offset  int               `json:"offset"`
	Classes int               `json:"classes"`
	Version string            `json:"model_version,omitempty"`
	Items   [][]WireCandidate `json:"items"`
	Spans   []SpanWire        `json:"spans,omitempty"`
}

// SpanWire is one worker-side span in a traced ScreenResponse. Start
// is nanoseconds since the worker received the request — relative by
// construction, so rebasing onto the router's RPC span start yields a
// correctly nested timeline with no clock sync. Keys are single
// letters because a traced reply carries one per pipeline stage.
type SpanWire struct {
	Name  string `json:"n"`
	Cat   string `json:"c,omitempty"`
	TID   int    `json:"t"`
	Start int64  `json:"s"`
	Dur   int64  `json:"d"`
}

// ShardInfo is the GET /v1/shard/info body: the static identity the
// router reads once at Dial to learn the shard map geometry. Codecs
// advertises the screen codecs the worker accepts ("v2", "json"); a
// pre-v2 worker's info simply lacks the field, and the router treats
// any absence the same way it treats a 415 — fall back to JSON.
type ShardInfo struct {
	Offset  int      `json:"offset"`
	Classes int      `json:"classes"`
	Hidden  int      `json:"hidden"`
	Version string   `json:"model_version,omitempty"`
	Codecs  []string `json:"codecs,omitempty"`
}

// ParseShardMap parses a router shard-map spec: shards separated by
// ';', replicas of one shard separated by ','. Bare host:port
// entries get an http:// scheme.
//
//	"10.0.0.1:9001,10.0.0.2:9001;10.0.0.3:9002,10.0.0.4:9002"
//	→ 2 shards × 2 replicas
func ParseShardMap(spec string) ([][]string, error) {
	var out [][]string
	for _, group := range strings.Split(spec, ";") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		var reps []string
		for _, r := range strings.Split(group, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			if !strings.Contains(r, "://") {
				r = "http://" + r
			}
			reps = append(reps, strings.TrimRight(r, "/"))
		}
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: shard group %q has no replicas", group)
		}
		out = append(out, reps)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty shard map %q", spec)
	}
	return out, nil
}
