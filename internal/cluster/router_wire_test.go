package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"enmc/internal/distributed"
)

func mustJSON(t testing.TB, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func decodeJSONBody(t testing.TB, r io.Reader, v interface{}) {
	t.Helper()
	if err := json.NewDecoder(r).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// --- codec negotiation at the worker surface ---

// TestWorkerBinaryScreen drives the worker's binary path directly:
// a v2 request frame with a v2-listing Accept must come back as a v2
// response frame whose decoded content is identical — bit-for-bit in
// the logits — to the JSON answer for the same batch.
func TestWorkerBinaryScreen(t *testing.T) {
	inst, shards, _ := fixture(t)
	w, err := NewWorker(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	batch := inst.Test[:3]
	const m = 8
	frame, err := AppendScreenRequest(nil, m, batch)
	if err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/shard/screen", bytes.NewReader(frame))
	req.Header.Set("Content-Type", ContentTypeScreenV2)
	req.Header.Set("Accept", AcceptScreenV2)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("binary screen = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeScreenV2 {
		t.Fatalf("reply Content-Type = %q, want %q", ct, ContentTypeScreenV2)
	}
	sc := GetWireScratch()
	defer sc.Release()
	raw, err := sc.ReadFrame(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := DecodeScreenResponse(raw, sc)
	if err != nil {
		t.Fatal(err)
	}

	// Same batch over JSON: decoded answers must match exactly.
	jreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/shard/screen",
		bytes.NewReader(mustJSON(t, ScreenRequest{Batch: batch, M: m})))
	jreq.Header.Set("Content-Type", ContentTypeJSON)
	jreq.Header.Set("Accept", ContentTypeJSON)
	jresp, err := http.DefaultClient.Do(jreq)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("json screen = %d", jresp.StatusCode)
	}
	if ct := jresp.Header.Get("Content-Type"); ct != ContentTypeJSON {
		t.Fatalf("json reply Content-Type = %q", ct)
	}
	var js ScreenResponse
	decodeJSONBody(t, jresp.Body, &js)

	if bin.Offset != js.Offset || bin.Classes != js.Classes || bin.Version != js.Version {
		t.Fatalf("identity differs across codecs: %d/%d/%q vs %d/%d/%q",
			bin.Offset, bin.Classes, bin.Version, js.Offset, js.Classes, js.Version)
	}
	if len(bin.Items) != len(js.Items) {
		t.Fatalf("item count differs: %d vs %d", len(bin.Items), len(js.Items))
	}
	for i := range js.Items {
		if len(bin.Items[i]) != len(js.Items[i]) {
			t.Fatalf("item %d: %d vs %d candidates", i, len(bin.Items[i]), len(js.Items[i]))
		}
		for j := range js.Items[i] {
			if bin.Items[i][j] != js.Items[i][j] {
				t.Fatalf("item %d[%d]: binary %+v, json %+v", i, j, bin.Items[i][j], js.Items[i][j])
			}
		}
	}
}

// TestWorkerForceJSONWire: a worker pinned by -wire json refuses the
// binary frame with 415 (the router's signal to renegotiate) but
// keeps answering JSON, and stops advertising the v2 codec in info.
func TestWorkerForceJSONWire(t *testing.T) {
	inst, shards, _ := fixture(t)
	w, err := NewWorker(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Info().Codecs; len(got) != 2 || got[0] != "v2" {
		t.Fatalf("default codecs = %v, want [v2 json]", got)
	}
	w.ForceJSONWire()
	if got := w.Info().Codecs; len(got) != 1 || got[0] != "json" {
		t.Fatalf("forced codecs = %v, want [json]", got)
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	frame, err := AppendScreenRequest(nil, 4, inst.Test[:1])
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/shard/screen", bytes.NewReader(frame))
	req.Header.Set("Content-Type", ContentTypeScreenV2)
	req.Header.Set("Accept", AcceptScreenV2)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("binary frame to -wire json worker = %d, want 415", resp.StatusCode)
	}

	// JSON still answers JSON — even when the Accept offers v2.
	jreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/shard/screen",
		bytes.NewReader(mustJSON(t, ScreenRequest{Batch: inst.Test[:1], M: 4})))
	jreq.Header.Set("Content-Type", ContentTypeJSON)
	jreq.Header.Set("Accept", AcceptScreenV2)
	jresp, err := http.DefaultClient.Do(jreq)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("json screen = %d", jresp.StatusCode)
	}
	if ct := jresp.Header.Get("Content-Type"); ct != ContentTypeJSON {
		t.Fatalf("pinned worker answered Content-Type %q", ct)
	}
}

// --- mixed-codec cluster bit-identity (the correctness bar) ---

// TestMixedCodecCluster runs a binary-preferring router against a
// cluster where one shard is pinned to JSON: the router must fall
// back on that shard alone (one renegotiation round trip, then
// sticky), every query must succeed, and the merged top-k must be
// bit-identical to an all-JSON router AND to the in-process scatter —
// the rolling-upgrade invariant.
func TestMixedCodecCluster(t *testing.T) {
	inst, shards, _ := fixture(t)
	urls := make([][]string, len(shards))
	workers := make([]*Worker, len(shards))
	for i, sh := range shards {
		w, err := NewWorker(sh)
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[i] = []string{srv.URL}
	}

	binRPCsBefore := mWireBinaryRPCs.Value()
	jsonRPCsBefore := mWireJSONRPCs.Value()
	fallbacksBefore := mWireFallbacks.Value()

	rBin := dialT(t, RouterConfig{ShardMap: urls})
	rJSON := dialT(t, RouterConfig{ShardMap: urls, WireJSON: true})

	// Pin shard 1 to JSON AFTER Dial — the router already believes it
	// speaks v2, so the first query must renegotiate via 415 at run
	// time, exactly like a worker rolled back mid-flight. (A pin
	// visible at Dial is pre-applied from info.Codecs instead; that
	// path is TestDialPrePinsJSONOnlyReplica.)
	workers[1].ForceJSONWire()

	ctx := context.Background()
	batch := inst.Test[:5]
	const m, topK = 24, 5
	per := (m + fixShards - 1) / fixShards
	for round := 0; round < 3; round++ {
		outsBin, p, err := rBin.ClassifyBatchPartial(ctx, batch, m, topK)
		if err != nil {
			t.Fatal(err)
		}
		if p.Partial {
			t.Fatalf("mixed-codec round %d degraded: %+v", round, p)
		}
		outsJSON, _, err := rJSON.ClassifyBatchPartial(ctx, batch, m, topK)
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range batch {
			want, err := distributed.ClassifyCtx(ctx, shards, h, per, topK)
			if err != nil {
				t.Fatal(err)
			}
			assertOutcome(t, i, outsBin[i], want)
			assertOutcome(t, i, outsJSON[i], want)
		}
	}

	if mWireBinaryRPCs.Value() <= binRPCsBefore {
		t.Fatal("no binary RPCs recorded in a mixed cluster")
	}
	if mWireJSONRPCs.Value() <= jsonRPCsBefore {
		t.Fatal("no JSON RPCs recorded in a mixed cluster")
	}
	got := mWireFallbacks.Value() - fallbacksBefore
	if got < 1 {
		t.Fatal("pinned shard never triggered a codec fallback")
	}
	// Sticky: the binary router renegotiates shard 1 once, not per
	// round. (The JSON router never offers binary, so never falls
	// back; Dial read Codecs and may even have pre-pinned.)
	if got > 2 {
		t.Fatalf("fallback fired %d times across 3 rounds — the JSON pin is not sticky", got)
	}
}

// TestDialPrePinsJSONOnlyReplica: a worker whose info advertises no
// v2 codec is never offered the binary frame — Dial pins it, so not
// even the first query pays the renegotiation round trip.
func TestDialPrePinsJSONOnlyReplica(t *testing.T) {
	_, shards, _ := fixture(t)
	w, err := NewWorker(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	w.ForceJSONWire()
	var binaryPosts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/v1/shard/screen" && req.Header.Get("Content-Type") == ContentTypeScreenV2 {
			binaryPosts.Add(1)
		}
		w.Handler().ServeHTTP(rw, req)
	}))
	defer srv.Close()

	// Single-shard map only tiles if this worker covers [0, classes).
	info := w.Info()
	if info.Offset != 0 {
		t.Fatalf("fixture shard 0 offset = %d", info.Offset)
	}
	r := dialT(t, RouterConfig{ShardMap: [][]string{{srv.URL}}})
	if _, _, err := r.ClassifyBatchPartial(context.Background(), [][]float32{make([]float32, fixHidden)}, 8, 3); err != nil {
		t.Fatal(err)
	}
	if n := binaryPosts.Load(); n != 0 {
		t.Fatalf("router sent %d binary frames to a replica that advertised json-only", n)
	}
}

// TestLegacy400FallbackPinsAfterJSONSuccess: a worker that speaks no
// v2 on the screen endpoint (a pre-v2 JSON decoder choking on the
// frame with 400) triggers the inline JSON retry, and — because the
// SAME request then succeeds as JSON — pins the replica, so later
// queries skip the wasted binary round trip.
func TestLegacy400FallbackPinsAfterJSONSuccess(t *testing.T) {
	inst, shards, _ := fixture(t)
	w, err := NewWorker(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	var binaryPosts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/v1/shard/screen" && strings.HasPrefix(req.Header.Get("Content-Type"), ContentTypeScreenV2) {
			binaryPosts.Add(1)
			// A pre-v2 worker knows nothing of the v2 media type: it
			// feeds the frame to its JSON decoder and answers 400.
			req.Header.Set("Content-Type", ContentTypeJSON)
		}
		w.Handler().ServeHTTP(rw, req)
	}))
	defer srv.Close()

	fallbacksBefore := mWireFallbacks.Value()
	r := dialT(t, RouterConfig{ShardMap: [][]string{{srv.URL}}})
	for q := 0; q < 3; q++ {
		if _, _, err := r.ClassifyBatchPartial(context.Background(), inst.Test[:1], 8, 3); err != nil {
			t.Fatal(err)
		}
	}
	if n := binaryPosts.Load(); n != 1 {
		t.Fatalf("%d binary frames across 3 queries, want 1 (400 + JSON success must pin the replica)", n)
	}
	if got := mWireFallbacks.Value() - fallbacksBefore; got != 1 {
		t.Fatalf("wire_fallbacks advanced by %d, want 1", got)
	}
}

// TestGenuine400DoesNotPinJSONOnly: a v2 worker 400-ing a genuinely
// bad request (wrong feature length) is NOT a codec refusal — the
// JSON retry fails identically, and the replica must not be degraded
// to JSON for all later (well-formed) traffic.
func TestGenuine400DoesNotPinJSONOnly(t *testing.T) {
	inst, shards, _ := fixture(t)
	w, err := NewWorker(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	r := dialT(t, RouterConfig{ShardMap: [][]string{{srv.URL}}, MaxAttempts: 2})
	bad := [][]float32{make([]float32, fixHidden+1)}
	if _, _, err := r.ClassifyBatchPartial(context.Background(), bad, 8, 3); err == nil {
		t.Fatal("wrong-geometry batch unexpectedly succeeded")
	}
	if r.shards[0].replicas[0].jsonOnly.Load() {
		t.Fatal("a genuine 400 pinned the replica JSON-only")
	}
	// The replica still takes well-formed traffic over the binary codec.
	binBefore := mWireBinaryRPCs.Value()
	if _, _, err := r.ClassifyBatchPartial(context.Background(), inst.Test[:1], 8, 3); err != nil {
		t.Fatal(err)
	}
	if mWireBinaryRPCs.Value() <= binBefore {
		t.Fatal("no binary RPC after a genuine 400 — replica wrongly degraded")
	}
}

// TestWireBodyTryAcquireAfterRelease pins the GetBody soundness fix:
// once every ref is gone the pooled payload may belong to another
// micro-batch, so a late replay must fail to re-acquire instead of
// resurrecting the refcount from zero.
func TestWireBodyTryAcquireAfterRelease(t *testing.T) {
	wb := &wireBody{}
	wb.refs.Store(1)
	if !wb.tryAcquire() {
		t.Fatal("tryAcquire failed with a live ref")
	}
	wb.release()
	wb.release()
	if wb.tryAcquire() {
		t.Fatal("tryAcquire resurrected a fully released payload")
	}
}

// TestModelVersionConcurrentWithQueries hammers the version readers
// while binary-codec queries recycle decode scratch. Before the fix,
// rpcOnce stored a pointer INTO pooled WireScratch memory, so the
// next decode into a recycled scratch rewrote the string under
// distinctVersions — a data race this test trips under -race.
func TestModelVersionConcurrentWithQueries(t *testing.T) {
	inst, shards, _ := fixture(t)
	urls, _ := startWorkers(t, shards, 1, nil)
	r := dialT(t, RouterConfig{ShardMap: urls, Timeout: 5 * time.Second})
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.ModelVersion()
			_ = r.VersionSkew()
		}
	}()
	for q := 0; q < 20; q++ {
		if _, _, err := r.ClassifyBatchPartial(ctx, inst.Test[:2], 24, 5); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if v := r.ModelVersion(); v != "vtest" {
		t.Fatalf("version = %q, want vtest", v)
	}
}

// --- keep-alive regression (the satellite leak fix) ---

// TestKeepAliveConnectionReuse pins the drain-to-EOF fix: Dial plus a
// series of sequential queries against one replica must ride ONE TCP
// connection. Before the fix, the JSON decoder left the trailing
// newline unread, the transport saw an un-drained body, and every
// RPC opened a fresh connection.
func TestKeepAliveConnectionReuse(t *testing.T) {
	for _, codec := range []struct {
		name     string
		wireJSON bool
	}{{"binary", false}, {"json", true}} {
		t.Run(codec.name, func(t *testing.T) {
			_, shards, _ := fixture(t)
			w, err := NewWorker(shards[0])
			if err != nil {
				t.Fatal(err)
			}
			var conns atomic.Int64
			srv := httptest.NewUnstartedServer(w.Handler())
			srv.Config.ConnState = func(_ net.Conn, state http.ConnState) {
				if state == http.StateNew {
					conns.Add(1)
				}
			}
			srv.Start()
			defer srv.Close()

			r := dialT(t, RouterConfig{
				ShardMap: [][]string{{srv.URL}},
				WireJSON: codec.wireJSON,
				Client:   &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}},
				Timeout:  5 * time.Second,
			})
			batch := [][]float32{make([]float32, fixHidden)}
			for q := 0; q < 8; q++ {
				if _, _, err := r.ClassifyBatchPartial(context.Background(), batch, 8, 3); err != nil {
					t.Fatal(err)
				}
			}
			if n := conns.Load(); n != 1 {
				t.Fatalf("%d connections for Dial + 8 sequential queries, want 1 (body not drained to EOF?)", n)
			}
		})
	}
}

// --- router fast-path allocation guard ---

// TestRouterFastPathAllocs bounds the router's per-item garbage on
// the all-healthy, no-hedge fast path. The absolute number includes
// net/http client machinery (connection pool bookkeeping, header
// maps), so the guard is on the MARGINAL allocations per extra batch
// item — the part the merge loop and codec own. MergeDedup's
// sort.Slice costs a handful per item; the former per-item `ck :=
// make(...)` and JSON decode pushed this past 40.
func TestRouterFastPathAllocs(t *testing.T) {
	inst, shards, _ := fixture(t)
	urls, _ := startWorkers(t, shards, 1, nil)
	r := dialT(t, RouterConfig{ShardMap: urls, Timeout: 5 * time.Second})
	ctx := context.Background()

	run := func(batch [][]float32) float64 {
		t.Helper()
		// Warm: size every pool (encode buffers, decode scratch, order
		// slices, HTTP connections) before measuring.
		for i := 0; i < 3; i++ {
			if _, _, err := r.ClassifyBatchPartial(ctx, batch, 24, 5); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(20, func() {
			if _, _, err := r.ClassifyBatchPartial(ctx, batch, 24, 5); err != nil {
				t.Fatal(err)
			}
		})
	}

	small := run(inst.Test[:1])
	big := run(repeatBatch(inst.Test, 17))
	perItem := (big - small) / 16
	if perItem > 16 {
		t.Fatalf("router fast path allocates %.1f/extra-item (batch1=%.0f batch17=%.0f), want ≤ 16", perItem, small, big)
	}
	// Coarse absolute ceiling so fixed-cost regressions (per-RPC JSON
	// bodies, per-query slices) cannot hide behind the marginal guard.
	if small > 700 {
		t.Fatalf("router fast path allocates %.0f/op for a 1-item batch across %d shards, want ≤ 700", small, fixShards)
	}
}

// repeatBatch tiles src rows until the batch has n items.
func repeatBatch(src [][]float32, n int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		out[i] = src[i%len(src)]
	}
	return out
}

// BenchmarkRouterFastPath measures the full scatter-gather round trip
// against in-process httptest workers — wire codec, HTTP, merge.
// Run with -benchmem to watch the allocs/op guard's raw number.
func BenchmarkRouterFastPath(b *testing.B) {
	inst, shards, _ := fixture(b)
	urls := make([][]string, len(shards))
	for i, sh := range shards {
		w, err := NewWorker(sh)
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		b.Cleanup(srv.Close)
		urls[i] = []string{srv.URL}
	}
	r, err := Dial(context.Background(), RouterConfig{ShardMap: urls, HealthInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(r.Close)
	batch := repeatBatch(inst.Test, 8)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.ClassifyBatchPartial(ctx, batch, 24, 5); err != nil {
			b.Fatal(err)
		}
	}
}
