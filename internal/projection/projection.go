// Package projection implements the sparse random projection used to
// build the ENMC screening module (paper Eq. 3). Following Achlioptas
// ("Database-friendly random projections"), entries of the k×d
// projection matrix P are drawn from sqrt(3/k)·{+1, 0, -1} with
// probabilities {1/6, 2/3, 1/6}. Because every entry is ternary, P is
// stored in 2 bits per entry — the paper notes its footprint is
// <0.1% of the classifier — and projecting a vector needs only adds
// and subtracts, which is why the Screener can afford it.
package projection

import (
	"fmt"
	"math"

	"enmc/internal/xrand"
)

// Trit codes for the 2-bit packed representation.
const (
	tritZero  = 0b00
	tritPlus  = 0b01
	tritMinus = 0b10
)

// Sparse is a k×d ternary projection matrix with scale sqrt(3/k).
type Sparse struct {
	K, D  int
	Scale float32
	// packed holds row-major 2-bit trits, 4 per byte.
	packed []byte
}

// New draws a fresh k×d sparse projection with the Achlioptas
// distribution, deterministically from seed.
func New(k, d int, seed uint64) *Sparse {
	if k <= 0 || d <= 0 {
		panic(fmt.Sprintf("projection: invalid shape %dx%d", k, d))
	}
	p := &Sparse{
		K:      k,
		D:      d,
		Scale:  float32(math.Sqrt(3 / float64(k))),
		packed: make([]byte, (k*d+3)/4),
	}
	r := xrand.New(seed)
	for i := 0; i < k*d; i++ {
		var t byte
		switch r.Intn(6) {
		case 0:
			t = tritPlus
		case 1:
			t = tritMinus
		default:
			t = tritZero
		}
		p.setTrit(i, t)
	}
	return p
}

func (p *Sparse) setTrit(i int, t byte) {
	shift := uint(i%4) * 2
	p.packed[i/4] = p.packed[i/4]&^(0b11<<shift) | t<<shift
}

func (p *Sparse) trit(i int) byte {
	return p.packed[i/4] >> (uint(i%4) * 2) & 0b11
}

// At returns entry (row, col) as -1, 0 or +1 (unscaled).
func (p *Sparse) At(row, col int) int {
	switch p.trit(row*p.D + col) {
	case tritPlus:
		return 1
	case tritMinus:
		return -1
	default:
		return 0
	}
}

// Bytes reports the packed storage footprint of P.
func (p *Sparse) Bytes() int64 { return int64(len(p.packed)) }

// Apply computes dst = P·h, where dst has length K and h length D.
// Only additions/subtracts plus one final scale per output are
// performed, matching the hardware cost model. Apply is the
// destination-reuse variant the allocation-free classify path runs
// on; the kernel walks the packed storage a byte (four trits) at a
// time, skipping all-zero bytes outright — about a fifth of them at
// the Achlioptas 2/3 sparsity — instead of re-deriving a bit offset
// per entry. The additions execute in the same ascending-j order as
// the scalar definition, so results are bit-identical.
func (p *Sparse) Apply(dst, h []float32) {
	if len(h) != p.D || len(dst) != p.K {
		panic(fmt.Sprintf("projection: Apply shapes %dx%d · %d -> %d", p.K, p.D, len(h), len(dst)))
	}
	for i := 0; i < p.K; i++ {
		var acc float32
		t := i * p.D
		end := t + p.D
		j := 0
		// Head: rows need not start on a byte boundary when D%4 != 0.
		for ; t%4 != 0 && t < end; t++ {
			switch p.packed[t>>2] >> (uint(t&3) * 2) & 0b11 {
			case tritPlus:
				acc += h[j]
			case tritMinus:
				acc -= h[j]
			}
			j++
		}
		for ; t+4 <= end; t += 4 {
			b := p.packed[t>>2]
			if b == 0 {
				j += 4
				continue
			}
			switch b & 0b11 {
			case tritPlus:
				acc += h[j]
			case tritMinus:
				acc -= h[j]
			}
			switch b >> 2 & 0b11 {
			case tritPlus:
				acc += h[j+1]
			case tritMinus:
				acc -= h[j+1]
			}
			switch b >> 4 & 0b11 {
			case tritPlus:
				acc += h[j+2]
			case tritMinus:
				acc -= h[j+2]
			}
			switch b >> 6 & 0b11 {
			case tritPlus:
				acc += h[j+3]
			case tritMinus:
				acc -= h[j+3]
			}
			j += 4
		}
		for ; t < end; t++ {
			switch p.packed[t>>2] >> (uint(t&3) * 2) & 0b11 {
			case tritPlus:
				acc += h[j]
			case tritMinus:
				acc -= h[j]
			}
			j++
		}
		dst[i] = acc * p.Scale
	}
}

// ApplyNew is Apply with a freshly allocated destination.
func (p *Sparse) ApplyNew(h []float32) []float32 {
	dst := make([]float32, p.K)
	p.Apply(dst, h)
	return dst
}

// NonZeroFraction reports the fraction of non-zero entries; the
// Achlioptas distribution targets 1/3.
func (p *Sparse) NonZeroFraction() float64 {
	nz := 0
	for i := 0; i < p.K*p.D; i++ {
		if p.trit(i) != tritZero {
			nz++
		}
	}
	return float64(nz) / float64(p.K*p.D)
}
