package projection

import (
	"math"
	"testing"

	"enmc/internal/tensor"
	"enmc/internal/xrand"
)

func TestShapeAndScale(t *testing.T) {
	p := New(16, 64, 1)
	if p.K != 16 || p.D != 64 {
		t.Fatalf("shape %dx%d", p.K, p.D)
	}
	want := math.Sqrt(3.0 / 16)
	if math.Abs(float64(p.Scale)-want) > 1e-6 {
		t.Fatalf("scale %v, want %v", p.Scale, want)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, b := New(8, 32, 42), New(8, 32, 42)
	for i := 0; i < 8; i++ {
		for j := 0; j < 32; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatal("same seed produced different matrices")
			}
		}
	}
	c := New(8, 32, 43)
	diff := 0
	for i := 0; i < 8; i++ {
		for j := 0; j < 32; j++ {
			if a.At(i, j) != c.At(i, j) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestEntriesAreTernary(t *testing.T) {
	p := New(10, 50, 7)
	for i := 0; i < 10; i++ {
		for j := 0; j < 50; j++ {
			v := p.At(i, j)
			if v != -1 && v != 0 && v != 1 {
				t.Fatalf("entry (%d,%d) = %d", i, j, v)
			}
		}
	}
}

func TestSparsityNearOneThird(t *testing.T) {
	p := New(64, 256, 3)
	nz := p.NonZeroFraction()
	if nz < 0.28 || nz > 0.39 {
		t.Fatalf("non-zero fraction %v, want ≈ 1/3", nz)
	}
}

func TestApplyMatchesDense(t *testing.T) {
	p := New(12, 40, 9)
	r := xrand.New(1)
	h := make([]float32, 40)
	for i := range h {
		h[i] = r.NormFloat32()
	}
	got := p.ApplyNew(h)

	// Dense reference.
	dense := tensor.NewMatrix(12, 40)
	for i := 0; i < 12; i++ {
		for j := 0; j < 40; j++ {
			dense.Set(i, j, float32(p.At(i, j))*p.Scale)
		}
	}
	want := make([]float32, 12)
	dense.MatVec(want, h)
	for i := range got {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("Apply mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestApplyBitIdenticalToScalar pins the byte-walking kernel to the
// trit-at-a-time scalar definition exactly (same ascending-j addition
// order), across D values that exercise the unaligned head, the
// aligned body, and the tail.
func TestApplyBitIdenticalToScalar(t *testing.T) {
	r := xrand.New(13)
	for _, k := range []int{1, 3, 8} {
		for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 9, 33, 130} {
			p := New(k, d, uint64(k*1000+d))
			h := make([]float32, d)
			for i := range h {
				h[i] = r.NormFloat32()
			}
			got := make([]float32, k)
			p.Apply(got, h)
			for i := 0; i < k; i++ {
				var acc float32
				for j := 0; j < d; j++ {
					switch p.At(i, j) {
					case 1:
						acc += h[j]
					case -1:
						acc -= h[j]
					}
				}
				if want := acc * p.Scale; got[i] != want {
					t.Fatalf("k=%d d=%d row %d: kernel %v != scalar %v", k, d, i, got[i], want)
				}
			}
		}
	}
}

func TestApplyZeroAlloc(t *testing.T) {
	p := New(32, 128, 5)
	h := make([]float32, 128)
	dst := make([]float32, 32)
	allocs := testing.AllocsPerRun(20, func() { p.Apply(dst, h) })
	if allocs != 0 {
		t.Fatalf("Apply allocates %v/op", allocs)
	}
}

func TestApplyShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4, 8, 1).Apply(make([]float32, 4), make([]float32, 7))
}

// TestNormPreservation checks the Johnson–Lindenstrauss property the
// screening method relies on: projected squared norms concentrate
// around the originals.
func TestNormPreservation(t *testing.T) {
	const d, k = 512, 128
	p := New(k, d, 11)
	r := xrand.New(2)
	var ratioSum float64
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		h := make([]float32, d)
		for i := range h {
			h[i] = r.NormFloat32()
		}
		ph := p.ApplyNew(h)
		ratioSum += math.Pow(tensor.Norm2(ph)/tensor.Norm2(h), 2)
	}
	mean := ratioSum / trials
	if mean < 0.85 || mean > 1.15 {
		t.Fatalf("JL norm ratio %v, want ≈ 1", mean)
	}
}

func TestBytesIsQuarterByteSized(t *testing.T) {
	p := New(10, 10, 1)
	if p.Bytes() != 25 {
		t.Fatalf("Bytes = %d, want 25 (100 trits at 2 bits)", p.Bytes())
	}
}

func TestInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 5, 1)
}
