package dram

import (
	"sync/atomic"

	"enmc/internal/telemetry"
)

// counters mirrors the per-channel Stats tallies into a telemetry
// registry as commands issue, so a live /metrics or expvar scrape
// sees DRAM activity mid-run instead of only at Drain.
type counters struct {
	reads, writes           *telemetry.Counter
	activates, precharges   *telemetry.Counter
	refreshes               *telemetry.Counter
	rowHits, rowMisses      *telemetry.Counter
	bytesRead, bytesWritten *telemetry.Counter
}

// metricsCounters is nil unless EnableMetrics was called; the command
// scheduler does one atomic pointer load per issued command to check.
var metricsCounters atomic.Pointer[counters]

// EnableMetrics mirrors every channel's command stream into r under
// "dram.*" counter names. Counters aggregate across all channels in
// the process (the observability view; per-channel exactness stays in
// Channel.Stats).
func EnableMetrics(r *telemetry.Registry) {
	metricsCounters.Store(&counters{
		reads:        r.Counter("dram.reads"),
		writes:       r.Counter("dram.writes"),
		activates:    r.Counter("dram.activates"),
		precharges:   r.Counter("dram.precharges"),
		refreshes:    r.Counter("dram.refreshes"),
		rowHits:      r.Counter("dram.row_hits"),
		rowMisses:    r.Counter("dram.row_misses"),
		bytesRead:    r.Counter("dram.bytes_read"),
		bytesWritten: r.Counter("dram.bytes_written"),
	})
}

// DisableMetrics stops mirroring.
func DisableMetrics() { metricsCounters.Store(nil) }
