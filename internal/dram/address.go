package dram

import "fmt"

// Loc is a decoded channel-local physical location.
type Loc struct {
	Rank, BankGroup, Bank, Row, Col int
}

// MapPolicy selects the physical address layout.
type MapPolicy int

const (
	// MapBGInterleave rotates consecutive bursts across bank groups:
	// layout Row : Rank : Bank : Col : BankGroup (bank-group bits
	// lowest). Back-to-back column commands then land in different
	// bank groups and obey the short tCCD_S instead of tCCD_L — the
	// standard DDR4 controller mapping, and the only way a stream
	// reaches peak bandwidth. This is the default.
	MapBGInterleave MapPolicy = iota
	// MapRowContiguous keeps a whole row's bursts consecutive:
	// layout Row : Rank : BankGroup : Bank : Col. Simpler, but a
	// stream is tCCD_L-bound. Kept for the mapping ablation.
	MapRowContiguous
)

// Mapper translates byte addresses to locations.
type Mapper struct {
	cfg    Config
	policy MapPolicy
}

// NewMapper builds a mapper with the default bank-group-interleaved
// policy.
func NewMapper(cfg Config) *Mapper { return &Mapper{cfg: cfg, policy: MapBGInterleave} }

// NewMapperPolicy builds a mapper with an explicit policy.
func NewMapperPolicy(cfg Config, p MapPolicy) *Mapper { return &Mapper{cfg: cfg, policy: p} }

// Decode splits a byte address into its location. Addresses beyond
// the channel capacity wrap (the compiler lays workloads out within
// capacity; wrapping keeps synthetic sweeps simple).
func (m *Mapper) Decode(addr uint64) Loc {
	c := m.cfg
	burst := addr / uint64(c.BurstBytes)
	var l Loc
	switch m.policy {
	case MapRowContiguous:
		l.Col = int(burst % uint64(c.ColumnsPerRow))
		burst /= uint64(c.ColumnsPerRow)
		l.Bank = int(burst % uint64(c.BanksPerGroup))
		burst /= uint64(c.BanksPerGroup)
		l.BankGroup = int(burst % uint64(c.BankGroups))
		burst /= uint64(c.BankGroups)
	default: // MapBGInterleave
		l.BankGroup = int(burst % uint64(c.BankGroups))
		burst /= uint64(c.BankGroups)
		l.Col = int(burst % uint64(c.ColumnsPerRow))
		burst /= uint64(c.ColumnsPerRow)
		l.Bank = int(burst % uint64(c.BanksPerGroup))
		burst /= uint64(c.BanksPerGroup)
	}
	l.Rank = int(burst % uint64(c.Ranks))
	burst /= uint64(c.Ranks)
	l.Row = int(burst % uint64(c.Rows))
	return l
}

// Encode is the inverse of Decode (offset within the burst is zero).
func (m *Mapper) Encode(l Loc) uint64 {
	c := m.cfg
	if l.Rank < 0 || l.Rank >= c.Ranks || l.BankGroup < 0 || l.BankGroup >= c.BankGroups ||
		l.Bank < 0 || l.Bank >= c.BanksPerGroup || l.Row < 0 || l.Row >= c.Rows ||
		l.Col < 0 || l.Col >= c.ColumnsPerRow {
		panic(fmt.Sprintf("dram: Encode out-of-range location %+v", l))
	}
	burst := uint64(l.Row)
	burst = burst*uint64(c.Ranks) + uint64(l.Rank)
	switch m.policy {
	case MapRowContiguous:
		burst = burst*uint64(c.BankGroups) + uint64(l.BankGroup)
		burst = burst*uint64(c.BanksPerGroup) + uint64(l.Bank)
		burst = burst*uint64(c.ColumnsPerRow) + uint64(l.Col)
	default:
		burst = burst*uint64(c.BanksPerGroup) + uint64(l.Bank)
		burst = burst*uint64(c.ColumnsPerRow) + uint64(l.Col)
		burst = burst*uint64(c.BankGroups) + uint64(l.BankGroup)
	}
	return burst * uint64(c.BurstBytes)
}

// flatBank returns the rank-local bank index of a location.
func (m *Mapper) flatBank(l Loc) int {
	return l.BankGroup*m.cfg.BanksPerGroup + l.Bank
}
