package dram

// SubmitRange submits a contiguous byte range as individual burst
// requests (the unit every weight-streaming kernel in this repo
// uses). bytes is rounded up to whole bursts.
func (ch *Channel) SubmitRange(addr uint64, bytes int64, write bool) []*Request {
	if bytes <= 0 {
		return nil
	}
	bb := int64(ch.cfg.BurstBytes)
	n := (bytes + bb - 1) / bb
	reqs := make([]*Request, 0, n)
	for i := int64(0); i < n; i++ {
		reqs = append(reqs, ch.Submit(addr+uint64(i*bb), write))
	}
	return reqs
}

// ReadRange submits and fully drains a contiguous read, returning the
// completion cycle of the last burst.
func (ch *Channel) ReadRange(addr uint64, bytes int64) int64 {
	ch.SubmitRange(addr, bytes, false)
	return ch.Drain()
}
