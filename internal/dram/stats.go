package dram

// Stats counts DRAM activity; the energy model consumes these tallies
// directly (Fig. 14's breakdown is built from them).
type Stats struct {
	Reads        int64
	Writes       int64
	Activates    int64
	Precharges   int64
	Refreshes    int64
	RowHits      int64 // column commands issued to an already-open row
	RowMisses    int64 // column commands that required ACT (and maybe PRE)
	BytesRead    int64
	BytesWritten int64
	DataBusBusy  int64 // cycles the data bus carried a burst
	Cycles       int64 // final simulated cycle (set on Drain)
}

// Add accumulates other into s (for aggregating channels).
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.Activates += other.Activates
	s.Precharges += other.Precharges
	s.Refreshes += other.Refreshes
	s.RowHits += other.RowHits
	s.RowMisses += other.RowMisses
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
	s.DataBusBusy += other.DataBusBusy
	if other.Cycles > s.Cycles {
		s.Cycles = other.Cycles
	}
}

// HitRate returns the row-buffer hit rate of column accesses.
func (s Stats) HitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// Bandwidth returns achieved data bandwidth in bytes/cycle.
func (s Stats) Bandwidth() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.BytesRead+s.BytesWritten) / float64(s.Cycles)
}
