package dram

import "testing"

// TestStatsAdd checks channel aggregation semantics: activity
// counters sum, but Cycles — a timestamp, not activity — keeps the
// max, because parallel channels overlap in time.
func TestStatsAdd(t *testing.T) {
	a := Stats{
		Reads: 10, Writes: 2, Activates: 3, Precharges: 1, Refreshes: 1,
		RowHits: 8, RowMisses: 2, BytesRead: 640, BytesWritten: 128,
		DataBusBusy: 48, Cycles: 1000,
	}
	b := Stats{
		Reads: 5, Writes: 5, Activates: 2, Precharges: 2, Refreshes: 0,
		RowHits: 6, RowMisses: 4, BytesRead: 320, BytesWritten: 320,
		DataBusBusy: 40, Cycles: 700,
	}
	sum := a
	sum.Add(b)

	if sum.Reads != 15 || sum.Writes != 7 || sum.Activates != 5 || sum.Precharges != 3 || sum.Refreshes != 1 {
		t.Errorf("command counters wrong: %+v", sum)
	}
	if sum.RowHits != 14 || sum.RowMisses != 6 {
		t.Errorf("row counters wrong: %+v", sum)
	}
	if sum.BytesRead != 960 || sum.BytesWritten != 448 || sum.DataBusBusy != 88 {
		t.Errorf("traffic counters wrong: %+v", sum)
	}
	if sum.Cycles != 1000 {
		t.Errorf("Cycles = %d, want max(1000, 700) = 1000", sum.Cycles)
	}

	// Max is symmetric: adding the later channel onto the earlier one
	// must also keep 1000.
	sum2 := b
	sum2.Add(a)
	if sum2.Cycles != 1000 {
		t.Errorf("reverse-order Cycles = %d, want 1000", sum2.Cycles)
	}
	if sum2.Reads != sum.Reads || sum2.BytesRead != sum.BytesRead {
		t.Error("Add not commutative on counters")
	}
}

func TestStatsHitRate(t *testing.T) {
	if hr := (Stats{}).HitRate(); hr != 0 {
		t.Errorf("empty HitRate = %g, want 0", hr)
	}
	s := Stats{RowHits: 3, RowMisses: 1}
	if hr := s.HitRate(); hr != 0.75 {
		t.Errorf("HitRate = %g, want 0.75", hr)
	}
	if hr := (Stats{RowMisses: 5}).HitRate(); hr != 0 {
		t.Errorf("all-miss HitRate = %g, want 0", hr)
	}
}

func TestStatsBandwidth(t *testing.T) {
	if bw := (Stats{BytesRead: 100}).Bandwidth(); bw != 0 {
		t.Errorf("zero-cycle Bandwidth = %g, want 0 (not +Inf)", bw)
	}
	s := Stats{BytesRead: 600, BytesWritten: 400, Cycles: 500}
	if bw := s.Bandwidth(); bw != 2 {
		t.Errorf("Bandwidth = %g, want 2", bw)
	}
}

// TestStatsAddPreservesDerivedRates aggregates two channels and
// checks the derived rates stay inside the inputs' envelope.
func TestStatsAddPreservesDerivedRates(t *testing.T) {
	a := Stats{RowHits: 90, RowMisses: 10, BytesRead: 1 << 20, Cycles: 100000}
	b := Stats{RowHits: 40, RowMisses: 60, BytesRead: 1 << 19, Cycles: 80000}
	sum := a
	sum.Add(b)
	if hr := sum.HitRate(); hr <= b.HitRate() || hr >= a.HitRate() {
		t.Errorf("aggregated HitRate %g outside (%g, %g)", hr, b.HitRate(), a.HitRate())
	}
	// Bandwidth uses max-Cycles: total bytes over the longer window.
	want := float64(a.BytesRead+b.BytesRead) / float64(a.Cycles)
	if bw := sum.Bandwidth(); bw != want {
		t.Errorf("aggregated Bandwidth = %g, want %g", bw, want)
	}
}
