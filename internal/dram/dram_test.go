package dram

import (
	"testing"
	"testing/quick"

	"enmc/internal/xrand"
)

func testCfg() Config {
	cfg := DDR4_2400()
	cfg.Ranks = 2
	cfg.Rows = 256
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DDR4_2400().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DDR4_2400()
	bad.Ranks = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestCapacityAndBandwidth(t *testing.T) {
	cfg := DDR4_2400()
	// 32 banks/rank… 4 groups × 4 banks = 16 banks, 65536 rows,
	// 128 cols × 64 B = 8 KB rows → 8 GB per rank.
	if got := cfg.RankCapacityBytes(); got != 16*65536*128*64 {
		t.Fatalf("rank capacity = %d", got)
	}
	// Peak: 64 B per 4 cycles at 1200 MHz = 19.2 GB/s.
	if bw := cfg.PeakBandwidthGBs(); bw < 19 || bw > 20 {
		t.Fatalf("peak bandwidth = %v GB/s", bw)
	}
}

func TestMapperRoundTrip(t *testing.T) {
	cfg := testCfg()
	m := NewMapper(cfg)
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		loc := Loc{
			Rank:      r.Intn(cfg.Ranks),
			BankGroup: r.Intn(cfg.BankGroups),
			Bank:      r.Intn(cfg.BanksPerGroup),
			Row:       r.Intn(cfg.Rows),
			Col:       r.Intn(cfg.ColumnsPerRow),
		}
		return m.Decode(m.Encode(loc)) == loc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMapperSequentialInterleavesBankGroups(t *testing.T) {
	cfg := testCfg()
	m := NewMapper(cfg)
	// Default policy: consecutive bursts rotate across bank groups
	// (tCCD_S) while staying in the same bank/row/rank for a long
	// stretch — the bandwidth-friendly DDR4 mapping.
	first := m.Decode(0)
	for i := 1; i < cfg.BankGroups*cfg.ColumnsPerRow; i++ {
		loc := m.Decode(uint64(i * cfg.BurstBytes))
		if loc.BankGroup != i%cfg.BankGroups {
			t.Fatalf("burst %d bank group = %d, want %d", i, loc.BankGroup, i%cfg.BankGroups)
		}
		if loc.Row != first.Row || loc.Bank != first.Bank || loc.Rank != first.Rank {
			t.Fatalf("burst %d left its row set: %+v vs %+v", i, loc, first)
		}
		if loc.Col != i/cfg.BankGroups {
			t.Fatalf("burst %d col = %d", i, loc.Col)
		}
	}
}

func TestMapperRowContiguousPolicy(t *testing.T) {
	cfg := testCfg()
	m := NewMapperPolicy(cfg, MapRowContiguous)
	first := m.Decode(0)
	for i := 1; i < cfg.ColumnsPerRow; i++ {
		loc := m.Decode(uint64(i * cfg.BurstBytes))
		if loc.Row != first.Row || loc.Bank != first.Bank || loc.BankGroup != first.BankGroup {
			t.Fatalf("burst %d left the row: %+v vs %+v", i, loc, first)
		}
		if loc.Col != i {
			t.Fatalf("burst %d col = %d", i, loc.Col)
		}
	}
	// Round trip under the alternate policy too.
	loc := Loc{Rank: 1, BankGroup: 2, Bank: 3, Row: 17, Col: 5}
	if m.Decode(m.Encode(loc)) != loc {
		t.Fatal("row-contiguous round trip failed")
	}
}

// TestBankGroupInterleavingRecoversBandwidth shows why the default
// mapping exists: the same stream is tCCD_L-bound (≈ CCDL cycles per
// burst) under the contiguous policy but reaches the tCCD_S rate
// under interleaving.
func TestBankGroupInterleavingRecoversBandwidth(t *testing.T) {
	cfg := testCfg()
	const bytes = 256 * 1024

	inter, _ := NewChannel(cfg, false)
	inter.SubmitRange(0, bytes, false)
	fast := inter.Drain()

	contig, err := NewChannelPolicy(cfg, false, MapRowContiguous)
	if err != nil {
		t.Fatal(err)
	}
	contig.SubmitRange(0, bytes, false)
	slow := contig.Drain()

	// Contiguous: CCDL-bound (6 cyc/burst); interleaved: 4 cyc/burst.
	if float64(slow) < float64(fast)*1.3 {
		t.Fatalf("tCCD_L penalty missing: contiguous %d vs interleaved %d", slow, fast)
	}
}

func TestSingleReadLatency(t *testing.T) {
	cfg := testCfg()
	ch, err := NewChannel(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	req := ch.Submit(0, false)
	ch.Drain()
	// Closed bank: ACT@0 → RD@tRCD → data ends at tRCD+CL+burst.
	want := int64(cfg.RCD + cfg.CL + cfg.BurstCycles)
	if req.Done != want {
		t.Fatalf("first read done at %d, want %d", req.Done, want)
	}
}

func TestRowHitBackToBack(t *testing.T) {
	cfg := testCfg()
	ch, _ := NewChannel(cfg, false)
	m := ch.Mapper()
	a := ch.Submit(m.Encode(Loc{Col: 0}), false)
	b := ch.Submit(m.Encode(Loc{Col: 1}), false) // same bank+row, next column
	ch.Drain()
	// Second read hits the open row; same bank group, so it is
	// tCCD_L-limited (CCDL > BurstCycles here).
	gap := int64(cfg.CCDL)
	if int64(cfg.BurstCycles) > gap {
		gap = int64(cfg.BurstCycles)
	}
	if b.Done != a.Done+gap {
		t.Fatalf("row hit done at %d, want %d", b.Done, a.Done+gap)
	}
	s := ch.Stats()
	if s.RowHits != 1 || s.RowMisses != 1 {
		t.Fatalf("hits/misses = %d/%d", s.RowHits, s.RowMisses)
	}
}

func TestRowConflictPaysPrechargeActivate(t *testing.T) {
	cfg := testCfg()
	ch, _ := NewChannel(cfg, false)
	m := ch.Mapper()
	sameBankOtherRow := m.Encode(Loc{Row: 1})
	a := ch.Submit(0, false)
	b := ch.Submit(sameBankOtherRow, false)
	ch.Drain()
	// Conflict must cost at least tRP+tRCD beyond the hit case.
	minGap := int64(cfg.RP + cfg.RCD)
	if b.Done-a.Done < minGap {
		t.Fatalf("conflict gap %d < %d", b.Done-a.Done, minGap)
	}
	if ch.Stats().Precharges == 0 {
		t.Fatal("no precharge issued on conflict")
	}
}

func TestSequentialStreamNearsPeakBandwidth(t *testing.T) {
	cfg := testCfg()
	ch, _ := NewChannel(cfg, false)
	const bytes = 1 << 20 // 1 MiB
	ch.SubmitRange(0, bytes, false)
	done := ch.Drain()
	bw := float64(bytes) / float64(done) // bytes per cycle
	peak := float64(cfg.BurstBytes) / float64(cfg.BurstCycles)
	if bw < 0.85*peak {
		t.Fatalf("stream bandwidth %.2f B/cyc below 85%% of peak %.2f", bw, peak)
	}
	if hr := ch.Stats().HitRate(); hr < 0.95 {
		t.Fatalf("sequential hit rate %.3f too low", hr)
	}
}

func TestRandomAccessMuchSlowerThanSequential(t *testing.T) {
	// A shallow queue exposes access latency; with a deep FR-FCFS
	// window, bank-level parallelism legitimately hides most of the
	// random-access penalty.
	cfg := testCfg()
	cfg.QueueDepth = 4
	seq, _ := NewChannel(cfg, false)
	seq.SubmitRange(0, 64*1024, false)
	seqDone := seq.Drain()

	rnd, _ := NewChannel(cfg, false)
	r := xrand.New(1)
	cap64 := uint64(cfg.ChannelCapacityBytes())
	for i := 0; i < 1024; i++ {
		addr := (uint64(r.Uint64()) % (cap64 / 64)) * 64
		rnd.Submit(addr, false)
	}
	rndDone := rnd.Drain()
	if rndDone < seqDone*2 {
		t.Fatalf("random (%d) not much slower than sequential (%d)", rndDone, seqDone)
	}
}

func TestPerRankBusScalesBandwidth(t *testing.T) {
	cfg := DDR4_2400()
	cfg.Rows = 256
	perRankBytes := int64(256 * 1024)

	run := func(perRank bool) int64 {
		ch, _ := NewChannel(cfg, perRank)
		m := ch.Mapper()
		// Stream the same volume from every rank concurrently by
		// interleaving submissions round-robin.
		bursts := int(perRankBytes) / cfg.BurstBytes
		for i := 0; i < bursts; i++ {
			for rk := 0; rk < cfg.Ranks; rk++ {
				col := i % cfg.ColumnsPerRow
				rowStep := i / cfg.ColumnsPerRow
				loc := Loc{
					Rank: rk,
					Bank: rowStep % cfg.BanksPerGroup,
					Row:  rowStep / cfg.BanksPerGroup % cfg.Rows,
					Col:  col,
				}
				ch.Submit(m.Encode(loc), false)
			}
		}
		return ch.Drain()
	}

	shared := run(false)
	private := run(true)
	speedup := float64(shared) / float64(private)
	// 8 private buses should approach 8× but at least 4×.
	if speedup < 4 {
		t.Fatalf("per-rank bus speedup %.2f, want ≥ 4 (shared %d, private %d)", speedup, shared, private)
	}
}

func TestRefreshHappens(t *testing.T) {
	cfg := testCfg()
	cfg.REFI = 2000 // force frequent refresh
	ch, _ := NewChannel(cfg, false)
	ch.SubmitRange(0, 256*1024, false)
	ch.Drain()
	if ch.Stats().Refreshes == 0 {
		t.Fatal("no refreshes over a long stream")
	}
}

func TestRefreshSlowsExecution(t *testing.T) {
	base := testCfg()
	base.REFI = 1 << 40 // effectively disable refresh
	noRef, _ := NewChannel(base, false)
	noRef.SubmitRange(0, 512*1024, false)
	fast := noRef.Drain()

	cfg := testCfg()
	cfg.REFI = 1500
	withRef, _ := NewChannel(cfg, false)
	withRef.SubmitRange(0, 512*1024, false)
	slow := withRef.Drain()
	if slow <= fast {
		t.Fatalf("refresh did not cost time: %d vs %d", slow, fast)
	}
}

func TestAdvanceToProcessesRefresh(t *testing.T) {
	cfg := testCfg()
	ch, _ := NewChannel(cfg, false)
	ch.AdvanceTo(int64(cfg.REFI) * 3)
	if ch.Stats().Refreshes < 2 {
		t.Fatalf("idle refreshes = %d", ch.Stats().Refreshes)
	}
	before := ch.Now()
	ch.AdvanceTo(before - 10) // moving backwards is a no-op
	if ch.Now() != before {
		t.Fatal("AdvanceTo moved backwards")
	}
}

func TestWriteThenReadTurnaround(t *testing.T) {
	cfg := testCfg()
	ch, _ := NewChannel(cfg, false)
	w := ch.Submit(0, true)
	r := ch.Submit(uint64(cfg.BurstBytes), false)
	ch.Drain()
	if w.Done < 0 || r.Done < 0 {
		t.Fatal("requests not completed")
	}
	// Read must wait at least tWTR after write data.
	if r.Done < w.Done+int64(cfg.WTR) {
		t.Fatalf("WTR violated: write done %d, read done %d", w.Done, r.Done)
	}
	s := ch.Stats()
	if s.Writes != 1 || s.Reads != 1 || s.BytesWritten != int64(cfg.BurstBytes) {
		t.Fatalf("stats: %+v", s)
	}
}

func TestBankParallelismOverlapsActivates(t *testing.T) {
	cfg := testCfg()
	ch, _ := NewChannel(cfg, false)
	m := ch.Mapper()
	// Two different banks: total time must be far below 2× serial.
	a := ch.Submit(m.Encode(Loc{Bank: 0}), false)
	b := ch.Submit(m.Encode(Loc{Bank: 1}), false)
	ch.Drain()
	serial := int64(cfg.RCD+cfg.CL+cfg.BurstCycles) * 2
	if b.Done >= serial {
		t.Fatalf("bank-parallel reads took %d, serial would be %d", b.Done, serial)
	}
	_ = a
}

func TestStatsAggregation(t *testing.T) {
	var a, b Stats
	a.Reads, a.Cycles = 5, 100
	b.Reads, b.Cycles = 7, 80
	a.Add(b)
	if a.Reads != 12 || a.Cycles != 100 {
		t.Fatalf("aggregate = %+v", a)
	}
}

func TestSubmitRangeEdge(t *testing.T) {
	cfg := testCfg()
	ch, _ := NewChannel(cfg, false)
	if got := ch.SubmitRange(0, 0, false); got != nil {
		t.Fatal("zero-byte range")
	}
	reqs := ch.SubmitRange(0, 65, false) // rounds to 2 bursts
	if len(reqs) != 2 {
		t.Fatalf("65 bytes → %d bursts", len(reqs))
	}
	ch.Drain()
}

func TestQueueBackpressure(t *testing.T) {
	cfg := testCfg()
	cfg.QueueDepth = 4
	ch, _ := NewChannel(cfg, false)
	// Submitting far more than the queue depth must auto-drain, not
	// deadlock or grow without bound.
	for i := 0; i < 64; i++ {
		ch.Submit(uint64(i*cfg.BurstBytes), false)
		if ch.Pending() > 4 {
			t.Fatalf("queue exceeded depth: %d", ch.Pending())
		}
	}
	ch.Drain()
	if ch.Stats().Reads != 64 {
		t.Fatalf("reads = %d", ch.Stats().Reads)
	}
}

// TestFAWLimitsActivateRate: with a binding four-activate window,
// bursts of row misses to many banks must slow to ≈ 4 ACTs per tFAW.
func TestFAWLimitsActivateRate(t *testing.T) {
	cfg := testCfg()
	cfg.FAW = 200 // strongly binding (4 ACTs per 200 cycles)
	cfg.QueueDepth = 32
	ch, _ := NewChannel(cfg, false)
	m := ch.Mapper()
	// 16 row misses across 16 different banks of one rank.
	const n = 16
	for i := 0; i < n; i++ {
		ch.Submit(m.Encode(Loc{BankGroup: i % cfg.BankGroups, Bank: i / cfg.BankGroups % cfg.BanksPerGroup, Row: 1}), false)
	}
	done := ch.Drain()
	// 16 ACTs at 4 per 200 cycles → at least 3 full windows.
	if done < 3*200 {
		t.Fatalf("FAW not binding: done at %d", done)
	}

	relaxed := testCfg()
	relaxed.QueueDepth = 32
	ch2, _ := NewChannel(relaxed, false)
	for i := 0; i < n; i++ {
		ch2.Submit(ch2.Mapper().Encode(Loc{BankGroup: i % cfg.BankGroups, Bank: i / cfg.BankGroups % cfg.BanksPerGroup, Row: 1}), false)
	}
	if fast := ch2.Drain(); fast >= done {
		t.Fatalf("relaxed FAW (%d) not faster than binding (%d)", fast, done)
	}
}

// TestWriteRecoveryDelaysPrecharge: after a write, the bank cannot
// precharge until tWR past the data burst, so a row conflict after a
// write costs more than after a read.
func TestWriteRecoveryDelaysPrecharge(t *testing.T) {
	cfg := testCfg()
	m := NewMapper(cfg)
	sameBankRow1 := m.Encode(Loc{Row: 1})

	afterRead, _ := NewChannel(cfg, false)
	afterRead.Submit(0, false)
	r := afterRead.Submit(sameBankRow1, false)
	afterRead.Drain()

	afterWrite, _ := NewChannel(cfg, false)
	afterWrite.Submit(0, true)
	w := afterWrite.Submit(sameBankRow1, false)
	afterWrite.Drain()

	if w.Done <= r.Done {
		t.Fatalf("write recovery missing: conflict after write %d vs after read %d", w.Done, r.Done)
	}
}

// TestRanksRefreshIndependently: refresh on one rank must not stall
// traffic on another.
func TestRanksRefreshIndependently(t *testing.T) {
	cfg := testCfg()
	cfg.REFI = 2000
	ch, _ := NewChannel(cfg, true) // per-rank buses
	m := ch.Mapper()
	// Saturate rank 0 with a long stream; rank 1 idle until late.
	for i := 0; i < 2048; i++ {
		col := i % cfg.ColumnsPerRow
		bg := i / cfg.ColumnsPerRow % cfg.BankGroups
		row := i / (cfg.ColumnsPerRow * cfg.BankGroups)
		ch.Submit(m.Encode(Loc{Rank: 0, BankGroup: bg, Row: row % cfg.Rows, Col: col}), false)
	}
	// One access to rank 1 amid rank-0 refreshes.
	late := ch.Submit(m.Encode(Loc{Rank: 1}), false)
	ch.Drain()
	if late.Done <= 0 {
		t.Fatal("rank-1 access never completed")
	}
	if ch.Stats().Refreshes == 0 {
		t.Fatal("expected refreshes during the stream")
	}
}
