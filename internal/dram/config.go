// Package dram implements a from-scratch cycle-accurate DDR4 timing
// simulator in the spirit of Ramulator (Kim et al., CAL 2015), which
// the paper's ENMC simulator interfaces with. It models channels,
// ranks, bank groups and banks with the JEDEC timing constraints from
// the paper's Table 3, an FR-FCFS scheduler with open-row policy, and
// all-bank refresh.
//
// The simulator is event-driven at command granularity: instead of
// ticking every clock, it computes the earliest cycle at which the
// best candidate command becomes issuable and jumps there, which is
// timing-equivalent to a per-cycle simulation but fast enough to
// stream multi-gigabyte weight sweeps.
//
// Two bus topologies are supported: a conventional shared channel bus
// (host-side controller) and a per-rank bus (NMP mode), where each
// rank's on-DIMM engine owns a private command/data path to its
// devices — the rank-level parallelism that gives non-intrusive NMP
// its bandwidth advantage (paper Section 2.3).
package dram

import "fmt"

// Config holds organization and timing parameters. All timings are in
// memory-clock cycles (tCK). Defaults follow the paper's Table 3
// DDR4-2400 configuration.
type Config struct {
	// Organization.
	Ranks         int // ranks on the channel
	BankGroups    int // bank groups per rank
	BanksPerGroup int // banks per group
	Rows          int // rows per bank
	ColumnsPerRow int // column bursts per row (row size / burst size)
	BurstBytes    int // bytes transferred per column access (x64: 64 B)
	BurstCycles   int // data-bus cycles per burst (BL8 on DDR: 4)
	ClockMHz      float64
	QueueDepth    int // scheduler window (Table 3: 64)

	// Timing (cycles).
	CL   int // read latency
	CWL  int // write latency
	RCD  int // ACT→RD/WR
	RP   int // PRE→ACT
	RC   int // ACT→ACT same bank
	RAS  int // ACT→PRE
	CCD  int // RD→RD / WR→WR same rank, different bank group (tCCD_S)
	CCDL int // RD→RD / WR→WR same rank, same bank group (tCCD_L); 0 = use CCD
	RRD  int // ACT→ACT different bank, same rank
	FAW  int // four-activate window
	WR   int // write recovery (data end → PRE)
	WTR  int // write data end → RD
	RTP  int // RD → PRE
	REFI int // average refresh interval
	RFC  int // refresh cycle time
}

// DDR4_2400 returns the paper's Table 3 configuration: DDR4-2400,
// 8 ranks per channel of 8Gb ×8 devices, CL-tRCD-tRP = 16-16-16,
// tRC = 55, tCCD = 4, tRRD = 4, tFAW = 6, with a 64-entry queue.
// (tFAW = 6 is the paper's stated value; it never binds given
// tRRD = 4, and is kept verbatim for fidelity.)
func DDR4_2400() Config {
	return Config{
		Ranks:         8,
		BankGroups:    4,
		BanksPerGroup: 4,
		Rows:          1 << 16,
		ColumnsPerRow: 128, // 8 KB row / 64 B burst
		BurstBytes:    64,
		BurstCycles:   4,
		ClockMHz:      1200, // DDR4-2400 MT/s
		QueueDepth:    64,

		CL:   16,
		CWL:  12,
		RCD:  16,
		RP:   16,
		RC:   55,
		RAS:  39, // tRC − tRP
		CCD:  4,
		CCDL: 6,
		RRD:  4,
		FAW:  6,
		WR:   18,
		WTR:  9,
		RTP:  9,
		REFI: 9360, // 7.8 µs at 1200 MHz
		RFC:  420,  // 350 ns at 1200 MHz
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Ranks <= 0 || c.BankGroups <= 0 || c.BanksPerGroup <= 0:
		return fmt.Errorf("dram: non-positive organization %d/%d/%d", c.Ranks, c.BankGroups, c.BanksPerGroup)
	case c.Rows <= 0 || c.ColumnsPerRow <= 0:
		return fmt.Errorf("dram: non-positive row geometry %d/%d", c.Rows, c.ColumnsPerRow)
	case c.BurstBytes <= 0 || c.BurstCycles <= 0:
		return fmt.Errorf("dram: non-positive burst geometry")
	case c.CL <= 0 || c.RCD <= 0 || c.RP <= 0 || c.RC <= 0:
		return fmt.Errorf("dram: non-positive core timings")
	case c.QueueDepth <= 0:
		return fmt.Errorf("dram: non-positive queue depth")
	case c.REFI <= c.RFC+c.RP:
		// A rank whose refresh takes longer than the refresh interval
		// can never serve requests.
		return fmt.Errorf("dram: tREFI (%d) must exceed tRFC+tRP (%d)", c.REFI, c.RFC+c.RP)
	}
	return nil
}

// BanksPerRank returns the total banks in one rank.
func (c Config) BanksPerRank() int { return c.BankGroups * c.BanksPerGroup }

// RankCapacityBytes returns the addressable bytes in one rank.
func (c Config) RankCapacityBytes() int64 {
	return int64(c.BanksPerRank()) * int64(c.Rows) * int64(c.ColumnsPerRow) * int64(c.BurstBytes)
}

// ChannelCapacityBytes returns the addressable bytes on the channel.
func (c Config) ChannelCapacityBytes() int64 {
	return c.RankCapacityBytes() * int64(c.Ranks)
}

// PeakBandwidthGBs returns the channel's peak data bandwidth in GB/s:
// one burst per BurstCycles at ClockMHz.
func (c Config) PeakBandwidthGBs() float64 {
	return float64(c.BurstBytes) / float64(c.BurstCycles) * c.ClockMHz * 1e6 / 1e9
}

// CyclesToSeconds converts memory-clock cycles to wall time.
func (c Config) CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / (c.ClockMHz * 1e6)
}
