package dram

import (
	"fmt"
	"math"
)

// Request is one burst-sized (BurstBytes) memory access.
type Request struct {
	Addr  uint64
	Write bool
	// Done is the cycle the data transfer finished, or -1 while the
	// request is outstanding.
	Done int64

	loc       Loc
	seq       int64
	activated bool // an ACT was issued on behalf of this request
}

type bank struct {
	openRow  int
	actReady int64
	rdReady  int64
	wrReady  int64
	preReady int64
}

type rank struct {
	banks      []bank
	rrdReady   int64
	ccdReady   int64 // earliest column command (tCCD_S from the last one)
	lastColBG  int   // bank group of the last column command
	lastColAt  int64 // issue cycle of the last column command
	wtrReady   int64 // earliest read start after a write burst
	rtwReady   int64 // earliest write start after a read burst
	faw        [4]int64
	fawIdx     int
	refDue     int64
	refBusyEnd int64
}

// Channel simulates one memory channel. With PerRankBus=false the
// ranks share one command/data bus (conventional host controller);
// with true every rank has a private bus, modeling per-rank NMP
// engines that talk only to their own devices.
type Channel struct {
	cfg        Config
	mapper     *Mapper
	perRankBus bool

	ranks []rank
	// Bus state, indexed by rank when perRankBus, else single entry.
	dataBusFree []int64
	cmdBusFree  []int64

	queue    []*Request
	now      int64
	finishAt int64
	seq      int64
	stats    Stats
}

// NewChannel validates the config and builds an idle channel with the
// default bank-group-interleaved address mapping.
func NewChannel(cfg Config, perRankBus bool) (*Channel, error) {
	return NewChannelPolicy(cfg, perRankBus, MapBGInterleave)
}

// NewChannelPolicy builds a channel with an explicit mapping policy.
func NewChannelPolicy(cfg Config, perRankBus bool, policy MapPolicy) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ch := &Channel{
		cfg:        cfg,
		mapper:     NewMapperPolicy(cfg, policy),
		perRankBus: perRankBus,
		ranks:      make([]rank, cfg.Ranks),
	}
	nBus := 1
	if perRankBus {
		nBus = cfg.Ranks
	}
	ch.dataBusFree = make([]int64, nBus)
	ch.cmdBusFree = make([]int64, nBus)
	for r := range ch.ranks {
		rk := &ch.ranks[r]
		rk.lastColBG = -1
		rk.lastColAt = math.MinInt64 / 2
		rk.banks = make([]bank, cfg.BanksPerRank())
		for b := range rk.banks {
			rk.banks[b].openRow = -1
		}
		rk.refDue = int64(cfg.REFI)
		for i := range rk.faw {
			rk.faw[i] = math.MinInt64 / 2
		}
	}
	return ch, nil
}

// Mapper exposes the channel's address mapper.
func (ch *Channel) Mapper() *Mapper { return ch.mapper }

// Now returns the current simulated cycle.
func (ch *Channel) Now() int64 { return ch.now }

// Pending returns the number of outstanding requests.
func (ch *Channel) Pending() int { return len(ch.queue) }

// Stats returns a snapshot of activity counters with Cycles set to
// the latest completion time seen.
func (ch *Channel) Stats() Stats {
	s := ch.stats
	s.Cycles = ch.finishAt
	if ch.now > s.Cycles {
		s.Cycles = ch.now
	}
	return s
}

func (ch *Channel) busIdx(rankID int) int {
	if ch.perRankBus {
		return rankID
	}
	return 0
}

// Submit enqueues a burst access; if the scheduler window is full it
// advances the simulation until space frees up. The returned request
// can be polled for Done after Drain.
func (ch *Channel) Submit(addr uint64, write bool) *Request {
	for len(ch.queue) >= ch.cfg.QueueDepth {
		if !ch.step() {
			panic("dram: scheduler stalled with a full queue")
		}
	}
	req := &Request{Addr: addr, Write: write, Done: -1, loc: ch.mapper.Decode(addr), seq: ch.seq}
	ch.seq++
	ch.queue = append(ch.queue, req)
	return req
}

// Drain runs the simulation until every queued request completes and
// returns the cycle of the last data transfer. The command clock
// (Now) is left at the last issue time, not the data-end time, so
// later requests pipeline behind in-flight data exactly as they would
// on real hardware.
func (ch *Channel) Drain() int64 {
	for len(ch.queue) > 0 {
		if !ch.step() {
			panic("dram: scheduler stalled during drain")
		}
	}
	return ch.Horizon()
}

// Horizon returns the furthest point simulated: the later of the
// command clock and the last data completion.
func (ch *Channel) Horizon() int64 {
	if ch.finishAt > ch.now {
		return ch.finishAt
	}
	return ch.now
}

// AdvanceTo moves idle time forward (e.g. while compute consumes a
// buffered tile), processing any refreshes that fall due.
func (ch *Channel) AdvanceTo(cycle int64) {
	if cycle <= ch.now {
		return
	}
	ch.now = cycle
	for r := range ch.ranks {
		ch.refreshIfDue(r)
	}
}

// candidate describes the next command for one request.
type candidate struct {
	req    *Request
	t      int64 // earliest feasible issue cycle
	column bool  // RD/WR (vs ACT/PRE)
}

// step issues exactly one command (or processes one refresh) and
// advances time. It returns false only if the queue is empty.
func (ch *Channel) step() bool {
	if len(ch.queue) == 0 {
		return false
	}

	// Process any refresh already due.
	for r := range ch.ranks {
		ch.refreshIfDue(r)
	}

	best := candidate{t: math.MaxInt64}
	window := ch.queue
	if len(window) > ch.cfg.QueueDepth {
		window = window[:ch.cfg.QueueDepth]
	}
	for _, req := range window {
		c := ch.nextCommand(req)
		if better(c, best) {
			best = c
		}
	}
	if best.req == nil {
		panic("dram: no issuable command")
	}

	// Refresh has priority: if the chosen command would issue at or
	// after its rank's refresh deadline, refresh first and rescan.
	rk := &ch.ranks[best.req.loc.Rank]
	if best.t >= rk.refDue {
		ch.doRefresh(best.req.loc.Rank)
		return true
	}

	ch.issue(best)
	return true
}

// better orders candidates: earlier time first; at equal times column
// commands (row hits) beat row commands (FR-FCFS), then older wins.
func better(a, b candidate) bool {
	if a.req == nil {
		return false
	}
	if b.req == nil {
		return true
	}
	if a.t != b.t {
		return a.t < b.t
	}
	if a.column != b.column {
		return a.column
	}
	return a.req.seq < b.req.seq
}

// nextCommand computes the next command and earliest feasible cycle
// for a request given current bank/rank/bus state.
func (ch *Channel) nextCommand(req *Request) candidate {
	cfg := &ch.cfg
	rk := &ch.ranks[req.loc.Rank]
	bk := &rk.banks[ch.mapper.flatBank(req.loc)]
	bus := ch.busIdx(req.loc.Rank)

	t := ch.now
	if rk.refBusyEnd > t {
		t = rk.refBusyEnd
	}
	if ch.cmdBusFree[bus] > t {
		t = ch.cmdBusFree[bus]
	}

	switch {
	case bk.openRow == req.loc.Row:
		// Column command. Back-to-back column commands to the same
		// bank group obey the longer tCCD_L.
		if ccdl := int64(cfg.CCDL); ccdl > 0 && req.loc.BankGroup == rk.lastColBG {
			if t2 := rk.lastColAt + ccdl; t2 > t {
				t = t2
			}
		}
		if req.Write {
			if bk.wrReady > t {
				t = bk.wrReady
			}
			if rk.ccdReady > t {
				t = rk.ccdReady
			}
			if rk.rtwReady > t {
				t = rk.rtwReady
			}
			if need := ch.dataBusFree[bus] - int64(cfg.CWL); need > t {
				t = need
			}
		} else {
			if bk.rdReady > t {
				t = bk.rdReady
			}
			if rk.ccdReady > t {
				t = rk.ccdReady
			}
			if rk.wtrReady > t {
				t = rk.wtrReady
			}
			if need := ch.dataBusFree[bus] - int64(cfg.CL); need > t {
				t = need
			}
		}
		return candidate{req: req, t: t, column: true}

	case bk.openRow >= 0:
		// Conflict: precharge.
		if bk.preReady > t {
			t = bk.preReady
		}
		return candidate{req: req, t: t}

	default:
		// Closed: activate.
		if bk.actReady > t {
			t = bk.actReady
		}
		if rk.rrdReady > t {
			t = rk.rrdReady
		}
		if fawT := rk.faw[rk.fawIdx] + int64(cfg.FAW); fawT > t {
			t = fawT
		}
		return candidate{req: req, t: t}
	}
}

// issue executes the candidate command at its feasible time.
func (ch *Channel) issue(c candidate) {
	cfg := &ch.cfg
	req := c.req
	rk := &ch.ranks[req.loc.Rank]
	bk := &rk.banks[ch.mapper.flatBank(req.loc)]
	bus := ch.busIdx(req.loc.Rank)
	t := c.t
	ch.now = t
	ch.cmdBusFree[bus] = t + 1

	m := metricsCounters.Load()
	switch {
	case bk.openRow == req.loc.Row:
		var dataStart int64
		if req.Write {
			dataStart = t + int64(cfg.CWL)
			dataEnd := dataStart + int64(cfg.BurstCycles)
			if p := dataEnd + int64(cfg.WR); p > bk.preReady {
				bk.preReady = p
			}
			rk.wtrReady = dataEnd + int64(cfg.WTR)
			rk.ccdReady = t + int64(cfg.CCD)
			rk.lastColBG = req.loc.BankGroup
			rk.lastColAt = t
			ch.dataBusFree[bus] = dataEnd
			ch.complete(req, dataEnd)
			ch.stats.Writes++
			ch.stats.BytesWritten += int64(cfg.BurstBytes)
			if m != nil {
				m.writes.Inc()
				m.bytesWritten.Add(int64(cfg.BurstBytes))
			}
		} else {
			dataStart = t + int64(cfg.CL)
			dataEnd := dataStart + int64(cfg.BurstCycles)
			if p := t + int64(cfg.RTP); p > bk.preReady {
				bk.preReady = p
			}
			rk.rtwReady = dataEnd + 2
			rk.ccdReady = t + int64(cfg.CCD)
			rk.lastColBG = req.loc.BankGroup
			rk.lastColAt = t
			ch.dataBusFree[bus] = dataEnd
			ch.complete(req, dataEnd)
			ch.stats.Reads++
			ch.stats.BytesRead += int64(cfg.BurstBytes)
			if m != nil {
				m.reads.Inc()
				m.bytesRead.Add(int64(cfg.BurstBytes))
			}
		}
		ch.stats.DataBusBusy += int64(cfg.BurstCycles)
		if req.activated {
			ch.stats.RowMisses++
			if m != nil {
				m.rowMisses.Inc()
			}
		} else {
			ch.stats.RowHits++
			if m != nil {
				m.rowHits.Inc()
			}
		}

	case bk.openRow >= 0:
		bk.openRow = -1
		if a := t + int64(cfg.RP); a > bk.actReady {
			bk.actReady = a
		}
		ch.stats.Precharges++
		if m != nil {
			m.precharges.Inc()
		}

	default:
		bk.openRow = req.loc.Row
		bk.rdReady = t + int64(cfg.RCD)
		bk.wrReady = t + int64(cfg.RCD)
		bk.preReady = t + int64(cfg.RAS)
		bk.actReady = t + int64(cfg.RC)
		rk.rrdReady = t + int64(cfg.RRD)
		rk.faw[rk.fawIdx] = t
		rk.fawIdx = (rk.fawIdx + 1) % 4
		req.activated = true
		ch.stats.Activates++
		if m != nil {
			m.activates.Inc()
		}
	}
}

// complete finishes a request and removes it from the queue.
func (ch *Channel) complete(req *Request, cycle int64) {
	req.Done = cycle
	if cycle > ch.finishAt {
		ch.finishAt = cycle
	}
	for i, q := range ch.queue {
		if q == req {
			ch.queue = append(ch.queue[:i], ch.queue[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("dram: completed request %v not in queue", req.Addr))
}

// refreshIfDue processes all refreshes that have fallen due for rank r.
func (ch *Channel) refreshIfDue(r int) {
	for ch.ranks[r].refDue <= ch.now {
		ch.doRefresh(r)
	}
}

// doRefresh performs an all-bank refresh on rank r: close every open
// row, then hold the rank busy for tRFC.
func (ch *Channel) doRefresh(r int) {
	cfg := &ch.cfg
	rk := &ch.ranks[r]
	start := rk.refDue
	if ch.now > start {
		start = ch.now
	}
	if rk.refBusyEnd > start {
		start = rk.refBusyEnd
	}
	for b := range rk.banks {
		bk := &rk.banks[b]
		if bk.openRow >= 0 {
			if bk.preReady > start {
				start = bk.preReady
			}
			bk.openRow = -1
			ch.stats.Precharges++
		}
	}
	start += int64(cfg.RP)
	end := start + int64(cfg.RFC)
	rk.refBusyEnd = end
	for b := range rk.banks {
		bk := &rk.banks[b]
		if end > bk.actReady {
			bk.actReady = end
		}
	}
	rk.refDue += int64(cfg.REFI)
	ch.stats.Refreshes++
	if m := metricsCounters.Load(); m != nil {
		m.refreshes.Inc()
	}
}
