package experiments

import (
	"fmt"

	"enmc/internal/dram"
	"enmc/internal/energy"
	"enmc/internal/nmp"
	"enmc/internal/workload"
)

// Table2 restates the evaluated models and datasets.
func Table2() *Table {
	t := &Table{
		Title:  "Table 2 — evaluated models and datasets",
		Header: []string{"application", "dataset", "type", "categories", "model", "hidden", "abbr"},
	}
	for _, s := range workload.Table2() {
		t.AddRow(s.Application, s.Dataset, s.DatasetType,
			fmt.Sprint(s.Categories), s.ModelType, fmt.Sprint(s.Hidden), s.Name)
	}
	for _, s := range workload.Synthetic() {
		t.AddRow(s.Application, s.Dataset, s.DatasetType,
			fmt.Sprint(s.Categories), s.ModelType, fmt.Sprint(s.Hidden), s.Name)
	}
	return t
}

// Table3 restates the simulated DRAM and ENMC configuration.
func Table3() *Table {
	d := dram.DDR4_2400()
	e := nmp.ENMC().Hw
	t := &Table{
		Title:  "Table 3 — ENMC configuration",
		Header: []string{"parameter", "value"},
	}
	t.AddRow("spec", "DDR4-2400")
	t.AddRow("channels", "8")
	t.AddRow("ranks/channel", fmt.Sprint(d.Ranks))
	t.AddRow("capacity/channel", fmt.Sprintf("%d GB", d.ChannelCapacityBytes()>>30))
	t.AddRow("queue", fmt.Sprintf("%d-entry", d.QueueDepth))
	t.AddRow("CL-tRCD-tRP", fmt.Sprintf("%d-%d-%d", d.CL, d.RCD, d.RP))
	t.AddRow("tRC/tCCD/tRRD/tFAW", fmt.Sprintf("%d/%d/%d/%d", d.RC, d.CCD, d.RRD, d.FAW))
	t.AddRow("peak BW/channel", fmt.Sprintf("%.1f GB/s", d.PeakBandwidthGBs()))
	t.AddRow("tech node / frequency", "28 nm / 400 MHz")
	t.AddRow("FP32 MACs", fmt.Sprint(e.FP32MACs))
	t.AddRow("INT4 MACs", fmt.Sprint(e.INT4MACs))
	t.AddRow("screener buffers", fmt.Sprintf("%dB+%dB", e.BufBytes, e.BufBytes))
	t.AddRow("executor buffers", fmt.Sprintf("%dB+%dB", e.BufBytes, e.BufBytes))
	return t
}

// Table4 restates the NMP baseline parity (similar area & power).
func Table4() *Table {
	t := &Table{
		Title:  "Table 4 — NMP designs at matched area/power budget",
		Header: []string{"design", "est. area mm²", "est. power mW"},
	}
	for _, d := range []nmp.Design{nmp.NDA(), nmp.Chameleon(), nmp.TensorDIMM(), nmp.ENMC()} {
		t.AddRow(d.Target.Name, f3(d.AreaMM2), f1(d.PowerMW))
	}
	return t
}

// Table5 restates the ENMC area/power breakdown.
func Table5() *Table {
	a := energy.ENMCArea()
	p := energy.ENMCLogic()
	t := &Table{
		Title:  "Table 5 — ENMC area and power estimation",
		Header: []string{"block", "area mm²", "power mW"},
	}
	t.AddRow("INT4 MAC", f3(a.INT4MAC), f1(p.INT4MACmW))
	t.AddRow("FP32 MAC", f3(a.FP32MAC), f1(p.FP32MACmW))
	t.AddRow("compute buffer", f3(a.ComputeBuf), f1(p.ComputeBufW))
	t.AddRow("control buffer", f3(a.ControlBuf), f1(p.ControlBufW))
	t.AddRow("ENMC ctrl", f3(a.Ctrl), f1(p.CtrlmW))
	t.AddRow("DRAM ctrl", f3(a.DRAMCtrl), f1(p.DRAMCtrlmW))
	t.AddRow("total", f3(a.Total()), f1(p.TotalmW()))
	return t
}
