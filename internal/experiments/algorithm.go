package experiments

import (
	"fmt"

	"enmc/internal/core"
	"enmc/internal/cpuhost"
	"enmc/internal/fgd"
	"enmc/internal/metrics"
	"enmc/internal/quant"
	"enmc/internal/svdsoftmax"
	"enmc/internal/tensor"
	"enmc/internal/workload"
)

// QualityOptions sizes the algorithm-level experiments. The headline
// workloads are scaled down so weights fit in memory and SVD
// factorization stays tractable (see DESIGN.md §1); quality numbers
// are agreement-based proxies, and the comparison of methods at equal
// candidate budgets is the reproduction target.
type QualityOptions struct {
	Seed         uint64
	LTarget      int // scale categories down to ≈ this many (default 1024)
	MaxHidden    int // cap the hidden dimension (default 256)
	TrainSamples int // screener distillation set (default 768)
	TestSamples  int // evaluation set (default 96)
	Epochs       int // distillation epochs (default 12)
	Sentences    int // BLEU corpus size (default 10)
	SentenceLen  int // tokens per sentence (default 12)
}

func (o *QualityOptions) defaults() {
	if o.LTarget <= 0 {
		o.LTarget = 1024
	}
	if o.MaxHidden <= 0 {
		o.MaxHidden = 256
	}
	if o.TrainSamples <= 0 {
		o.TrainSamples = 768
	}
	if o.TestSamples <= 0 {
		o.TestSamples = 96
	}
	if o.Epochs <= 0 {
		o.Epochs = 12
	}
	if o.Sentences <= 0 {
		o.Sentences = 10
	}
	if o.SentenceLen <= 0 {
		o.SentenceLen = 12
	}
}

// qualitySpec scales a Table 2 spec for in-memory evaluation.
func qualitySpec(s workload.Spec, o QualityOptions) workload.Spec {
	if s.Categories > o.LTarget {
		s = s.Scaled(s.Categories / o.LTarget)
	}
	if s.Hidden > o.MaxHidden {
		s.Hidden = o.MaxHidden
	}
	return s
}

// prepared is a generated workload with a trained screener.
type prepared struct {
	orig workload.Spec // unscaled dimensions, used for cost models
	spec workload.Spec // scaled dimensions, used for quality runs
	inst *workload.Instance
	scr  *core.Screener
	dec  *workload.Decoder // NMT workloads only
	cpu  cpuhost.Config
}

func prepare(spec workload.Spec, o QualityOptions) (prepared, error) {
	o.defaults()
	sc := qualitySpec(spec, o)
	inst := workload.Generate(sc, workload.GenOptions{
		Seed:  o.Seed ^ uint64(len(sc.Name)),
		Train: o.TrainSamples,
		Valid: 32,
		Test:  o.TestSamples,
	})
	train := inst.Train
	p := prepared{orig: spec, spec: sc, inst: inst, cpu: cpuhost.Xeon8280()}

	if spec.Application == "NMT" {
		// Screener training must see the decoder's state
		// distribution (the paper trains on the task's own hidden
		// representations); augment the distillation set with exact
		// greedy-decode trajectories.
		p.dec = workload.NewDecoder(inst, o.Seed+5, o.SentenceLen)
		exact := func(h []float32) int { return inst.Classifier.Predict(h) }
		starts := len(inst.Train)
		if starts > 128 {
			starts = 128
		}
		for i := 0; i < starts; i++ {
			_, states := p.dec.DecodeWithStates(inst.Train[i], o.SentenceLen, exact)
			train = append(train, states...)
		}
	}

	cfg := core.Config{
		Categories: sc.Categories,
		Hidden:     sc.Hidden,
		Reduced:    sc.Hidden / 4, // the paper's 0.25 parameter scale
		Precision:  quant.INT4,
		Seed:       o.Seed + 1,
	}
	scr, _, err := core.TrainScreener(inst.Classifier, train, cfg, core.TrainOptions{
		Epochs: o.Epochs,
		Seed:   o.Seed + 2,
	})
	if err != nil {
		return prepared{}, err
	}
	p.scr = scr
	return p, nil
}

// exactTopK precomputes the full classifier's logits and top-k sets.
func (p prepared) exactState(k int) (logits [][]float32, topk [][]int, top1 []int) {
	for _, h := range p.inst.Test {
		z := p.inst.Classifier.Logits(h)
		logits = append(logits, z)
		topk = append(topk, tensor.TopK(z, k))
		top1 = append(top1, tensor.ArgMax(z))
	}
	return logits, topk, top1
}

// Fig11 regenerates the quality-vs-speedup comparison of Approximate
// Screening against SVD-softmax and FGD, one panel per workload:
// BLEU for GNMT, perplexity for the two LM workloads, and P@1 for the
// recommendation workload. Speedups are CPU-roofline time of full
// classification divided by the method's time at the same candidate
// budget.
func Fig11(o QualityOptions) (*Table, error) {
	o.defaults()
	t := &Table{
		Title:  "Fig. 11 — quality vs speedup: AS vs SVD-softmax vs FGD",
		Header: []string{"workload", "metric", "method", "budget", "speedup", "quality"},
	}
	for _, spec := range workload.Table2() {
		p, err := prepare(spec, o)
		if err != nil {
			return nil, err
		}
		if err := fig11Panel(t, p, o); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"quality is measured against the exact classifier on synthetic workloads (DESIGN.md §1)",
		"AS should dominate: equal-or-better quality at equal budget with the highest speedup")
	return t, nil
}

func fig11Panel(t *Table, p prepared, o QualityOptions) error {
	// Quality runs on the scaled instance; speedups come from the
	// cost models at the workload's ORIGINAL dimensions, where the
	// paper measures them (per-kernel software overhead would
	// otherwise swamp the scaled-down sizes).
	l, d := p.orig.Categories, p.orig.Hidden
	k := d / 4
	cpu := p.cpu
	full := cpu.TimeFull(l, d, 1)

	metric, exactQ := panelMetric(p, o)
	t.AddRow(p.spec.Name, metric, "exact", "-", "1.0x", exactQ(func(h []float32) *core.Result {
		z := p.inst.Classifier.Logits(h)
		return &core.Result{Mixed: z}
	}))

	svdModel, err := svdsoftmax.Decompose(p.inst.Classifier)
	if err != nil {
		return err
	}
	idx, err := fgd.Build(p.inst.Classifier, fgd.BuildOptions{Seed: o.Seed + 9})
	if err != nil {
		return err
	}

	budgets := []float64{0.02, 0.05, 0.10}
	for _, frac := range budgets {
		m := int(frac * float64(l)) // original-scale candidate count
		if m < 1 {
			m = 1
		}
		mq := int(frac * float64(p.spec.Categories)) // scaled run
		if mq < 1 {
			mq = 1
		}
		budget := fmt.Sprintf("%.0f%%", frac*100)

		// Approximate Screening.
		asTime := cpu.TimeScreened(l, d, k, m, 1, quant.INT4)
		t.AddRow(p.spec.Name, metric, "AS", budget, fmtX(full/asTime),
			exactQ(func(h []float32) *core.Result {
				return core.ClassifyApprox(p.inst.Classifier, p.scr, h, core.TopM(mq))
			}))

		// SVD-softmax at preview width d/8 (its knee in the original
		// paper) and the same refinement budget.
		width := p.spec.Hidden / 8
		if width < 1 {
			width = 1
		}
		svdTime := cpu.Time(svdsoftmax.Cost(l, d, d/8, m))
		t.AddRow(p.spec.Name, metric, "SVD", budget, fmtX(full/svdTime),
			exactQ(func(h []float32) *core.Result {
				return svdModel.Classify(h, width, mq)
			}))

		// FGD with a search beam proportional to the budget. Quality
		// uses the scaled index; the cost extrapolates the measured
		// per-query distance computations to the original class count
		// (graph search work scales ≈ linearly with the beam, which
		// scales with m ∝ l).
		ef := 2 * mq
		idx.ResetStats()
		var queries int64
		q := exactQ(func(h []float32) *core.Result {
			queries++
			return idx.Classify(p.inst.Classifier, h, mq, ef)
		})
		perQuery := idx.DistComps / maxI64(queries, 1)
		perQuery = int64(float64(perQuery) * float64(l) / float64(p.spec.Categories))
		fgdTime := cpu.Time(fgd.Cost(perQuery, d))
		t.AddRow(p.spec.Name, metric, "FGD", budget, fmtX(full/fgdTime), q)
	}
	return nil
}

// panelMetric returns the panel's metric name and an evaluator that
// runs a classify function over the panel's test material and
// formats the quality value.
func panelMetric(p prepared, o QualityOptions) (string, func(func(h []float32) *core.Result) string) {
	switch p.spec.Application {
	case "NMT":
		dec := p.dec
		exact := func(h []float32) int { return p.inst.Classifier.Predict(h) }
		var refs [][]int
		n := o.Sentences
		if n > len(p.inst.Test) {
			n = len(p.inst.Test)
		}
		for i := 0; i < n; i++ {
			refs = append(refs, dec.Decode(p.inst.Test[i], o.SentenceLen, exact))
		}
		return "BLEU", func(classify func(h []float32) *core.Result) string {
			var cands [][]int
			for i := 0; i < n; i++ {
				cands = append(cands, dec.Decode(p.inst.Test[i], o.SentenceLen, func(h []float32) int {
					return classify(h).Predict()
				}))
			}
			return f3(metrics.BLEU(cands, refs))
		}
	case "Recommendation":
		_, topk, _ := p.exactState(5)
		return "P@1", func(classify func(h []float32) *core.Result) string {
			var top1 []int
			for _, h := range p.inst.Test {
				top1 = append(top1, classify(h).Predict())
			}
			return f3(metrics.TopKAgreement(top1, topk))
		}
	default: // language modeling → perplexity
		return "PPL", func(classify func(h []float32) *core.Result) string {
			var logits [][]float32
			for _, h := range p.inst.Test {
				logits = append(logits, classify(h).Mixed)
			}
			return f2(metrics.Perplexity(logits, p.inst.Labels))
		}
	}
}

// Fig12 regenerates the sensitivity study on the LSTM-W33K workload:
// (a) screener parameter scale k/d from 1/16 to 1/2 at INT4, and
// (b) quantization level FP32/INT8/INT4/INT2 at the chosen scale
// 0.25. Quality is perplexity plus top-1 agreement with the exact
// classifier.
func Fig12(o QualityOptions) (*Table, error) {
	o.defaults()
	spec := qualitySpec(workload.Table2()[0], o)
	inst := workload.Generate(spec, workload.GenOptions{
		Seed: o.Seed ^ 0x12f, Train: o.TrainSamples, Valid: 32, Test: o.TestSamples,
	})
	m := spec.Categories / 20 // 5% candidate budget throughout

	t := &Table{
		Title:  "Fig. 12 — AS sensitivity (LSTM-W33K config)",
		Header: []string{"panel", "setting", "PPL", "top-1 agreement"},
	}

	exactTop1 := make([][]int, len(inst.Test))
	var exactLogits [][]float32
	for i, h := range inst.Test {
		z := inst.Classifier.Logits(h)
		exactLogits = append(exactLogits, z)
		exactTop1[i] = []int{tensor.ArgMax(z)}
	}
	t.AddRow("-", "exact", f2(metrics.Perplexity(exactLogits, inst.Labels)), "1.000")

	eval := func(scr *core.Screener, float32Screen bool) (string, string) {
		var logits [][]float32
		var top1 []int
		for _, h := range inst.Test {
			var res *core.Result
			if float32Screen {
				zt := scr.ScreenFloat(h)
				cands := core.SelectCandidates(zt, core.TopM(m))
				exact := inst.Classifier.LogitsRows(cands, h)
				for j, c := range cands {
					zt[c] = exact[j]
				}
				res = &core.Result{Mixed: zt, Candidates: cands}
			} else {
				res = core.ClassifyApprox(inst.Classifier, scr, h, core.TopM(m))
			}
			logits = append(logits, res.Mixed)
			top1 = append(top1, res.Predict())
		}
		return f2(metrics.Perplexity(logits, inst.Labels)),
			f3(metrics.TopKAgreement(top1, exactTop1))
	}

	train := func(k int, bits quant.Bits) (*core.Screener, error) {
		cfg := core.Config{
			Categories: spec.Categories, Hidden: spec.Hidden,
			Reduced: k, Precision: bits, Seed: o.Seed + 3,
		}
		scr, _, err := core.TrainScreener(inst.Classifier, inst.Train, cfg, core.TrainOptions{
			Epochs: o.Epochs, Seed: o.Seed + 4,
		})
		return scr, err
	}

	// Panel (a): parameter scale sweep at INT4.
	for _, div := range []int{16, 8, 4, 2} {
		scr, err := train(spec.Hidden/div, quant.INT4)
		if err != nil {
			return nil, err
		}
		ppl, agree := eval(scr, false)
		t.AddRow("(a) scale", fmt.Sprintf("k/d=1/%d", div), ppl, agree)
	}

	// Panel (b): quantization sweep at the paper's chosen scale 0.25.
	scr, err := train(spec.Hidden/4, quant.INT8)
	if err != nil {
		return nil, err
	}
	ppl, agree := eval(scr, true)
	t.AddRow("(b) precision", "FP32", ppl, agree)
	for _, bits := range []quant.Bits{quant.INT8, quant.INT4, quant.INT2} {
		scr, err := train(spec.Hidden/4, bits)
		if err != nil {
			return nil, err
		}
		ppl, agree := eval(scr, false)
		t.AddRow("(b) precision", bits.String(), ppl, agree)
	}
	t.Notes = append(t.Notes,
		"the paper selects scale 0.25 and INT4: quality saturates there while cost keeps falling")
	return t, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
