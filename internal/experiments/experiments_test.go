package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyQuality keeps the algorithm-level tests fast.
func tinyQuality() QualityOptions {
	return QualityOptions{
		Seed: 1, LTarget: 320, MaxHidden: 96,
		TrainSamples: 256, TestSamples: 32, Epochs: 6,
		Sentences: 4, SentenceLen: 8,
	}
}

func tinyPerf() PerfOptions {
	return PerfOptions{Batches: []int{1, 4}, SampleRows: 1024}
}

func cell(t *Table, row, col int) string { return t.Rows[row][col] }

func cellFloat(tst *testing.T, t *Table, row, col int) float64 {
	s := strings.TrimSuffix(cell(t, row, col), "x")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		tst.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, cell(t, row, col), err)
	}
	return v
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bbbb"}}
	tab.AddRow("xx", "y")
	tab.Notes = append(tab.Notes, "n")
	s := tab.String()
	for _, want := range []string{"== T ==", "bbbb", "xx", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, s)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtSI(1.5e9) != "1.5G" || fmtSI(2e3) != "2.0K" || fmtSI(12) != "12" || fmtSI(3e6) != "3.0M" || fmtSI(2e12) != "2.0T" {
		t.Fatal("fmtSI")
	}
	if fmtX(2.34) != "2.3x" {
		t.Fatal("fmtX")
	}
}

func TestFig4Shape(t *testing.T) {
	tab := Fig4()
	if len(tab.Rows) != 7 {
		t.Fatalf("Fig4 rows = %d", len(tab.Rows))
	}
	// Classification share must grow monotonically across the
	// synthetic scaling rows and exceed 97% for XMLCNN.
	xml := cellFloat(t, tab, 3, 3)
	if xml < 97 {
		t.Fatalf("XMLCNN classification param share %v", xml)
	}
	s100m := cellFloat(t, tab, 6, 3)
	if s100m < xml {
		t.Fatal("classification share must grow with scale")
	}
}

func TestFig5aLinear(t *testing.T) {
	tab := Fig5a()
	// Footprint and time must both grow ~linearly: the last row is
	// 100M categories vs 33278 in the first (≈3005× larger).
	gbRatio := cellFloat(t, tab, len(tab.Rows)-1, 1) / cellFloat(t, tab, 0, 1)
	if gbRatio < 2000 || gbRatio > 4000 {
		t.Fatalf("footprint scaling ratio %v", gbRatio)
	}
	msRatio := cellFloat(t, tab, len(tab.Rows)-1, 2) / cellFloat(t, tab, 0, 2)
	if msRatio < 1000 {
		t.Fatalf("time scaling ratio %v", msRatio)
	}
}

func TestFig5bMemoryVsComputeBound(t *testing.T) {
	tab := Fig5b()
	// The Xeon ridge point is peak-flops/bandwidth ≈ 37.5 ops/byte:
	// screening and candidate-only rows must sit left of it
	// (memory-bound), the front-end to the right (compute-bound). At
	// batch 1 both screened kernels must be far left.
	const ridge = 37.5
	for i := range tab.Rows {
		oi := cellFloat(t, tab, i, 2)
		batch := cell(tab, i, 1)
		switch cell(tab, i, 0) {
		case "screening", "candidate-only":
			if oi >= ridge {
				t.Fatalf("row %d: %s intensity %v beyond the ridge", i, cell(tab, i, 0), oi)
			}
			if batch == "1" && oi > ridge/4 {
				t.Fatalf("row %d: batch-1 intensity %v not deeply memory-bound", i, oi)
			}
		case "front-end":
			if oi < ridge {
				t.Fatalf("row %d: front-end intensity %v should be compute-bound", i, oi)
			}
		}
	}
}

func TestFig12Trends(t *testing.T) {
	tab, err := Fig12(tinyQuality())
	if err != nil {
		t.Fatal(err)
	}
	// Agreement must improve monotonically with k/d in panel (a)
	// (within a small tolerance) and INT2 must be the worst precision
	// in panel (b).
	var scaleAgree []float64
	var int2, int4 float64
	for i := range tab.Rows {
		switch {
		case cell(tab, i, 0) == "(a) scale":
			scaleAgree = append(scaleAgree, cellFloat(t, tab, i, 3))
		case cell(tab, i, 1) == "INT2":
			int2 = cellFloat(t, tab, i, 3)
		case cell(tab, i, 1) == "INT4":
			int4 = cellFloat(t, tab, i, 3)
		}
	}
	if len(scaleAgree) != 4 {
		t.Fatalf("scale sweep rows = %d", len(scaleAgree))
	}
	if scaleAgree[len(scaleAgree)-1] < scaleAgree[0] {
		t.Fatalf("agreement did not improve with scale: %v", scaleAgree)
	}
	if int2 > int4 {
		t.Fatalf("INT2 agreement %v should not beat INT4 %v", int2, int4)
	}
}

func TestFig13Ordering(t *testing.T) {
	tab, err := Fig13(tinyPerf())
	if err != nil {
		t.Fatal(err)
	}
	avg := tab.Rows[len(tab.Rows)-1]
	if avg[0] != "geo/avg" {
		t.Fatal("missing average row")
	}
	cpuAS, _ := strconv.ParseFloat(strings.TrimSuffix(avg[2], "x"), 64)
	nda, _ := strconv.ParseFloat(strings.TrimSuffix(avg[3], "x"), 64)
	cham, _ := strconv.ParseFloat(strings.TrimSuffix(avg[4], "x"), 64)
	td, _ := strconv.ParseFloat(strings.TrimSuffix(avg[5], "x"), 64)
	en, _ := strconv.ParseFloat(strings.TrimSuffix(avg[6], "x"), 64)
	// Paper ordering: ENMC > TensorDIMM > NDA > Chameleon, and all
	// NMPs beat CPU+AS on average.
	if !(en > td && td > nda && nda > cham) {
		t.Fatalf("design ordering wrong: %v", avg)
	}
	if en < cpuAS {
		t.Fatal("ENMC must beat CPU+AS")
	}
	// The ENMC/TensorDIMM ratio should land near the paper's 2.7x.
	if r := en / td; r < 1.8 || r > 4.5 {
		t.Fatalf("ENMC/TensorDIMM ratio %v far from paper's 2.7", r)
	}
}

func TestFig14EnergyShape(t *testing.T) {
	tab, err := Fig14(tinyPerf())
	if err != nil {
		t.Fatal(err)
	}
	// Every workload: ENMC total < TensorDIMM total; static+access+
	// logic must sum to the total column.
	for i := 0; i < len(tab.Rows); i += 3 {
		tdTotal := cellFloat(t, tab, i, 5)
		enTotal := cellFloat(t, tab, i+2, 5)
		if enTotal >= tdTotal/2 {
			t.Fatalf("row %d: ENMC energy %v not well below TensorDIMM %v", i, enTotal, tdTotal)
		}
		for r := i; r < i+3; r++ {
			sum := cellFloat(t, tab, r, 2) + cellFloat(t, tab, r, 3) + cellFloat(t, tab, r, 4)
			if total := cellFloat(t, tab, r, 5); sum < total*0.99 || sum > total*1.01 {
				t.Fatalf("row %d: components %v != total %v", r, sum, total)
			}
		}
	}
}

func TestFig15GapWidens(t *testing.T) {
	tab, err := Fig15(tinyPerf())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Fig15 rows = %d", len(tab.Rows))
	}
	first := cellFloat(t, tab, 0, 4)
	last := cellFloat(t, tab, 3, 4)
	if last <= first {
		t.Fatalf("ENMC/TD gap must widen with scale: %v → %v", first, last)
	}
	// TD-Large must beat TD at every scale (its reason to exist).
	for i := range tab.Rows {
		if cellFloat(t, tab, i, 2) <= cellFloat(t, tab, i, 1) {
			t.Fatalf("row %d: TD-Large not faster than TD", i)
		}
	}
}

func TestStaticTables(t *testing.T) {
	if got := len(Table2().Rows); got != 7 {
		t.Fatalf("Table2 rows = %d", got)
	}
	t3 := Table3().String()
	for _, want := range []string{"DDR4-2400", "16-16-16", "128"} {
		if !strings.Contains(t3, want) {
			t.Fatalf("Table3 missing %q", want)
		}
	}
	if got := len(Table4().Rows); got != 4 {
		t.Fatalf("Table4 rows = %d", got)
	}
	t5 := Table5()
	if cell(t5, len(t5.Rows)-1, 0) != "total" {
		t.Fatal("Table5 missing total row")
	}
	if cellFloat(t, t5, len(t5.Rows)-1, 2) != 285.4 {
		t.Fatal("Table5 total power")
	}
}

// TestFig11Smoke runs the full quality comparison at tiny scale and
// validates the structural claims: AS has the highest speedup at
// every budget, and AS quality approaches exact as the budget grows.
func TestFig11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quality experiment in -short mode")
	}
	tab, err := Fig11(tinyQuality())
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads × (1 exact + 3 budgets × 3 methods) rows.
	if len(tab.Rows) != 4*10 {
		t.Fatalf("Fig11 rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if cell(tab, i, 2) != "AS" {
			continue
		}
		asSp := cellFloat(t, tab, i, 4)
		svdSp := cellFloat(t, tab, i+1, 4)
		fgdSp := cellFloat(t, tab, i+2, 4)
		if asSp <= svdSp || asSp <= fgdSp {
			t.Fatalf("row %d: AS speedup %v not dominant (SVD %v, FGD %v)", i, asSp, svdSp, fgdSp)
		}
	}
}

func TestAblationsTable(t *testing.T) {
	tab, err := Ablations(tinyQuality())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("ablation rows = %d", len(tab.Rows))
	}
	// Learned screener must not be worse than projected.
	learned := cellFloat(t, tab, 0, 3)
	projected := cellFloat(t, tab, 1, 3)
	if learned < projected {
		t.Fatalf("learned %v below projected %v", learned, projected)
	}
	// Per-row MSE must not exceed per-tensor.
	if cellFloat(t, tab, 4, 3) > cellFloat(t, tab, 5, 3) {
		t.Fatal("per-row scales should not lose to per-tensor")
	}
	// QAT must not be meaningfully worse than post-training
	// quantization at INT2 (it usually wins; allow 5% slack for the
	// tiny test configuration).
	if cellFloat(t, tab, 7, 3) > cellFloat(t, tab, 6, 3)*1.05 {
		t.Fatal("QAT lost badly to post-training quantization at INT2")
	}
	// Restreaming must cost more than reuse.
	if cellFloat(t, tab, 11, 3) <= cellFloat(t, tab, 10, 3) {
		t.Fatal("restream should cost more than reuse")
	}
}

func TestExtScaleOut(t *testing.T) {
	tab, err := ExtScaleOut(tinyPerf())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("scale-out rows = %d", len(tab.Rows))
	}
	// Efficiency must decay monotonically-ish: first 1.0, last < 0.8.
	if cellFloat(t, tab, 0, 5) < 0.99 {
		t.Fatal("single-node efficiency must be 1")
	}
	if cellFloat(t, tab, 4, 5) >= cellFloat(t, tab, 0, 5) {
		t.Fatal("efficiency should decay with node count")
	}
	// Speedup still grows.
	if cellFloat(t, tab, 4, 4) <= cellFloat(t, tab, 1, 4) {
		t.Fatal("speedup should keep growing to 16 nodes")
	}
}

func TestExtHostInterface(t *testing.T) {
	tab, err := ExtHostInterface(tinyPerf())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("host rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if f := cellFloat(t, tab, i, 5); f > 0.3 {
			t.Fatalf("row %d: host-bus fraction %v too high", i, f)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "b"}}
	tab.AddRow("x,1", `say "hi"`)
	tab.AddRow("plain", "2")
	got := tab.CSV()
	want := "a,b\n\"x,1\",\"say \"\"hi\"\"\"\nplain,2\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestExtBeam(t *testing.T) {
	tab, err := ExtBeam(tinyQuality())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("beam rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		agree := cellFloat(t, tab, i, 2)
		// The tiny test configuration underfits badly at the 2%
		// budget; only sanity-check the range here (the full-size run
		// in bench_results.txt shows 0.79–0.95).
		if agree <= 0 || agree > 1.0 {
			t.Fatalf("row %d: implausible agreement %v", i, agree)
		}
	}
	// The 5% budget must not lose to the 2% budget at the same width
	// (more candidates can only help the beam), allowing tiny noise.
	for w := 0; w < 3; w++ {
		low := cellFloat(t, tab, 2*w, 2)
		high := cellFloat(t, tab, 2*w+1, 2)
		if high < low-0.1 {
			t.Fatalf("width row %d: 5%% budget (%v) much worse than 2%% (%v)", w, high, low)
		}
	}
}
