// Package experiments regenerates every table and figure of the
// paper's evaluation (Sections 3, 6 and 7). Each Fig*/Table* function
// runs the relevant models and simulators and returns a Table whose
// rows correspond to the series the paper plots; EXPERIMENTS.md
// records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtX renders a speedup like "7.3x".
func fmtX(v float64) string { return fmt.Sprintf("%.1fx", v) }

// fmtSI renders big counts with an SI suffix.
func fmtSI(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.1fT", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// CSV renders the table as RFC-4180 CSV (header row first; notes are
// omitted) for downstream plotting.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRec := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRec(t.Header)
	for _, row := range t.Rows {
		writeRec(row)
	}
	return sb.String()
}
