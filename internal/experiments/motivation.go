package experiments

import (
	"fmt"

	"enmc/internal/core"
	"enmc/internal/cpuhost"
	"enmc/internal/quant"
	"enmc/internal/workload"
)

// Fig4 regenerates the motivation breakdown: model parameters and
// per-inference operations split into classification vs
// non-classification for every workload, plus the synthetic scaling
// points. The paper's claim: classification dominates, overwhelmingly
// so at recommendation scale.
func Fig4() *Table {
	t := &Table{
		Title:  "Fig. 4 — parameter & operation breakdown (classification vs non-classification)",
		Header: []string{"workload", "cls params", "non-cls params", "cls param %", "cls ops", "non-cls ops", "cls op %"},
	}
	for _, s := range append(workload.Table2(), workload.Synthetic()...) {
		cp, np := s.ClassificationParams(), s.FrontEnd.Params
		co, no := s.ClassificationOps(), s.FrontEnd.Ops
		t.AddRow(s.Name,
			fmtSI(cp), fmtSI(np), f1(100*cp/(cp+np)),
			fmtSI(co), fmtSI(no), f1(100*co/(co+no)))
	}
	return t
}

// Fig5a regenerates the footprint/latency scaling plot: classifier
// memory and CPU execution time versus category count at hidden 512.
func Fig5a() *Table {
	t := &Table{
		Title:  "Fig. 5(a) — classification footprint and CPU time vs categories (d=512)",
		Header: []string{"categories", "weight GB", "CPU time ms"},
	}
	cpu := cpuhost.Xeon8280()
	for _, l := range []int{33278, 100000, 267744, 670091, 1_000_000, 3_000_000, 10_000_000, 100_000_000} {
		spec := workload.Spec{Categories: l, Hidden: 512}
		t.AddRow(
			fmt.Sprintf("%d", l),
			f2(spec.WeightBytes()/(1<<30)),
			f2(cpu.TimeFull(l, 512, 1)*1e3),
		)
	}
	t.Notes = append(t.Notes, "both columns scale linearly with l, reproducing the paper's linear trend")
	return t
}

// Fig5b regenerates the roofline points: operational intensity and
// attained GFLOP/s for approximate screening, candidates-only
// classification, and the front-end network, at growing batch sizes
// (darker color = larger batch in the paper).
func Fig5b() *Table {
	t := &Table{
		Title:  "Fig. 5(b) — roofline points (Xeon 8280: 4.8 TFLOP/s peak, 128 GB/s)",
		Header: []string{"kernel", "batch", "ops/byte", "GFLOP/s"},
	}
	cpu := cpuhost.Xeon8280()
	spec := workload.Table2()[1] // Transformer-W268K
	l, d := spec.Categories, spec.Hidden
	k, m := d/4, l/50
	for _, batch := range []int{1, 2, 4, 8} {
		b := float64(batch)

		screen := core.ScreeningCost(l, d, k, quant.INT4).ScaleBy(b)
		screen.Bytes /= b // weights shared across the batch
		gf, oi := cpu.Roofline(screen)
		t.AddRow("screening", fmt.Sprint(batch), f2(oi), f1(gf))

		cand := core.CandidateCost(m, d).ScaleBy(b)
		gf, oi = cpu.Roofline(cand)
		t.AddRow("candidate-only", fmt.Sprint(batch), f2(oi), f1(gf))

		// Front-end: the Transformer stack processes a whole sequence
		// (512 tokens) per weight fetch, so its layer weights are
		// amortized seq-fold — that reuse is what puts the front-end
		// on the compute-bound side of the ridge in the paper's plot.
		const seq = 512
		layerParams := spec.FrontEnd.Params - float64(l*d) // exclude embedding table
		front := core.OpCount{
			FP32MACs: spec.FrontEnd.Ops / 2 * seq * b,
			Bytes:    layerParams * 4,
		}
		gf, oi = cpu.Roofline(front)
		t.AddRow("front-end", fmt.Sprint(batch), f2(oi), f1(gf))
	}
	t.Notes = append(t.Notes,
		"screening and candidate-only sit far left of the ridge (memory-bound); the front-end sits right (compute-bound)")
	return t
}
