package experiments

import (
	"fmt"

	"enmc/internal/compiler"
	"enmc/internal/core"
	"enmc/internal/cpuhost"
	"enmc/internal/distributed"
	"enmc/internal/enmc"
	"enmc/internal/host"
	"enmc/internal/metrics"
	"enmc/internal/nmp"
	"enmc/internal/quant"
	"enmc/internal/system"
	"enmc/internal/tensor"
	"enmc/internal/workload"
)

// The experiments in this file go beyond the paper's figures: they
// evaluate the extensions the paper sketches (distributed scale-out,
// host-interface behaviour) and quantify the design-choice ablations
// DESIGN.md calls out, so the claims in the architecture sections are
// backed by numbers rather than prose.

// ExtScaleOut evaluates the related-work extension: sharding the
// classifier across nodes, each with its own ENMC memory system and
// locally trained screener. Reports speedup and parallel efficiency
// over 1–16 nodes for S10M.
func ExtScaleOut(o PerfOptions) (*Table, error) {
	o.defaults()
	t := &Table{
		Title:  "Extension — distributed scale-out (S10M, per-node 8×8 ENMC)",
		Header: []string{"nodes", "per-node ms", "network us", "total ms", "speedup", "efficiency"},
	}
	spec, err := workload.ByName("S10M")
	if err != nil {
		return nil, err
	}
	task := taskFor(spec, 1, o.EnergyCandidateFraction)
	sys := system.Default(nmp.ENMC())
	if o.SampleRows > 0 {
		sys.SampleRows = o.SampleRows
	}
	cfg := distributed.Config{
		Nodes:            1,
		System:           sys,
		LinkBandwidthGBs: 12.5, // 100 GbE
		LinkLatencySec:   5e-6,
	}

	var base float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		cfg.Nodes = n
		res, err := cfg.Run(task, compiler.ModeScreened)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			base = res.TotalSeconds
		}
		speedup := base / res.TotalSeconds
		t.AddRow(fmt.Sprint(n),
			f3(res.PerNodeSeconds*1e3),
			f1((res.ScatterSeconds+res.GatherSeconds)*1e6),
			f3(res.TotalSeconds*1e3),
			fmtX(speedup),
			f2(speedup/float64(n)))
	}
	t.Notes = append(t.Notes,
		"each node keeps an approximate screener over its class shard; the aggregator merges exact candidate logits",
		"efficiency decays as the gather fan-in grows relative to per-node classification")
	return t, nil
}

// ExtHostInterface characterizes the host↔DIMM link of Fig. 10: what
// fraction of an offload the channel interface (descriptors, polling,
// RETURN traffic) occupies, per workload. The design goal is that the
// engines — not the interface — bound the system.
func ExtHostInterface(o PerfOptions) (*Table, error) {
	o.defaults()
	t := &Table{
		Title:  "Extension — host interface occupancy (Fig. 10 flow)",
		Header: []string{"workload", "engine cycles", "descr cycles", "poll cycles", "return cycles", "host-bus fraction"},
	}
	hw := nmp.ENMC().Hw
	for _, spec := range workload.Table2() {
		task := taskFor(spec, 4, o.CandidateFraction)
		share := task.Split(64)
		if o.SampleRows > 0 && share.Rows > o.SampleRows {
			share.Rows = o.SampleRows
		}
		prog, err := compiler.Compile(task, hw, compiler.ENMCTarget(), share, compiler.ModeScreened)
		if err != nil {
			return nil, err
		}
		res, err := host.Run(host.Default(), hw, prog)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.Name,
			fmt.Sprint(res.EngineCycles),
			fmt.Sprint(res.DescriptorCycles),
			fmt.Sprint(res.PollCycles),
			fmt.Sprint(res.ReturnCycles),
			f3(res.HostBusFraction))
	}
	t.Notes = append(t.Notes,
		"fractions well below 1 confirm the PRECHARGE-framed instruction interface never bottlenecks the offload")
	return t, nil
}

// Ablations quantifies the design choices DESIGN.md marks ◆: learned
// vs projected screener, top-m vs threshold selection, per-row vs
// per-tensor scales, dual-module pipelining, and batch weight reuse.
func Ablations(o QualityOptions) (*Table, error) {
	o.defaults()
	t := &Table{
		Title:  "Ablations — design choices",
		Header: []string{"ablation", "variant", "metric", "value"},
	}

	spec := workload.Spec{Name: "ablation", Categories: 768, Hidden: 128, LatentRank: 32, ZipfS: 1.05}
	inst := workload.Generate(spec, workload.GenOptions{
		Seed: o.Seed, Train: o.TrainSamples, Valid: 32, Test: o.TestSamples,
	})
	cfg := core.Config{Categories: 768, Hidden: 128, Reduced: 32, Precision: quant.INT4, Seed: o.Seed}
	const m = 38 // 5% budget

	agreement := func(scr *core.Screener, sel core.Selection) float64 {
		var top1 []int
		exact := make([][]int, 0, len(inst.Test))
		for _, h := range inst.Test {
			top1 = append(top1, core.ClassifyApprox(inst.Classifier, scr, h, sel).Predict())
			exact = append(exact, []int{tensor.ArgMax(inst.Classifier.Logits(h))})
		}
		return metrics.TopKAgreement(top1, exact)
	}

	learned, _, err := core.TrainScreener(inst.Classifier, inst.Train, cfg, core.TrainOptions{Epochs: o.Epochs, Seed: o.Seed + 1})
	if err != nil {
		return nil, err
	}
	projected, err := core.ProjectedScreener(inst.Classifier, cfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("screener init", "learned (Alg. 1)", "top-1 agreement", f3(agreement(learned, core.TopM(m))))
	t.AddRow("screener init", "projected W·Pᵀ", "top-1 agreement", f3(agreement(projected, core.TopM(m))))

	th := core.CalibrateThreshold(learned, inst.Valid, m)
	t.AddRow("selection", "top-m", "top-1 agreement", f3(agreement(learned, core.TopM(m))))
	t.AddRow("selection", "threshold (hw filter)", "top-1 agreement", f3(agreement(learned, core.Threshold(th))))

	ptCfg := cfg
	ptCfg.PerTensor = true
	perTensor, _, err := core.TrainScreener(inst.Classifier, inst.Train, ptCfg, core.TrainOptions{Epochs: o.Epochs, Seed: o.Seed + 1})
	if err != nil {
		return nil, err
	}
	screenMSE := func(scr *core.Screener) float64 {
		var total float64
		for _, h := range inst.Test {
			total += tensor.MSE(scr.Screen(h), inst.Classifier.Logits(h))
		}
		return total / float64(len(inst.Test))
	}
	t.AddRow("quant scales", "per-row", "screen MSE", f2(screenMSE(learned)))
	t.AddRow("quant scales", "per-tensor", "screen MSE", f2(screenMSE(perTensor)))

	// Quantization-aware fine-tuning at the aggressive INT2 point.
	// The STE phase needs a converged float model to fine-tune, so
	// this comparison always gets at least 12 epochs.
	int2Cfg := cfg
	int2Cfg.Precision = quant.INT2
	int2Epochs := o.Epochs
	if int2Epochs < 12 {
		int2Epochs = 12
	}
	int2Post, _, err := core.TrainScreener(inst.Classifier, inst.Train, int2Cfg, core.TrainOptions{Epochs: int2Epochs, Seed: o.Seed + 1})
	if err != nil {
		return nil, err
	}
	int2QAT, _, err := core.TrainScreener(inst.Classifier, inst.Train, int2Cfg, core.TrainOptions{Epochs: int2Epochs, Seed: o.Seed + 1, QuantAware: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("INT2 training", "post-training quant", "screen MSE", f2(screenMSE(int2Post)))
	t.AddRow("INT2 training", "quant-aware (STE)", "screen MSE", f2(screenMSE(int2QAT)))

	// Architecture ablations: dual-module pipeline + batch reuse.
	task := compiler.Task{Categories: 131072, Hidden: 512, Reduced: 128, Candidates: 8192, Batch: 4}
	cycles := func(dual bool) (int64, error) {
		tgt := compiler.ENMCTarget()
		tgt.DualModule = dual
		tgt.WeightReuseAcrossBatch = false
		prog, err := compiler.Compile(task, enmc.Default(), tgt, task.Split(64), compiler.ModeScreened)
		if err != nil {
			return 0, err
		}
		eng, err := enmc.New(enmc.Default())
		if err != nil {
			return 0, err
		}
		res, err := eng.Run(prog.Ops)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	dual, err := cycles(true)
	if err != nil {
		return nil, err
	}
	serial, err := cycles(false)
	if err != nil {
		return nil, err
	}
	t.AddRow("pipeline", "dual-module (SyncS2E)", "rank cycles", fmt.Sprint(dual))
	t.AddRow("pipeline", "serialized (BARRIER)", "rank cycles", fmt.Sprint(serial))

	for _, reuse := range []bool{true, false} {
		d := nmp.TensorDIMM()
		d.Target.WeightReuseAcrossBatch = reuse
		res, err := system.Default(d).Run(task, compiler.ModeFull)
		if err != nil {
			return nil, err
		}
		name := "reuse across batch"
		if !reuse {
			name = "restream per item"
		}
		t.AddRow("batch weights", name, "offload µs", f1(res.Seconds*1e6))
	}

	t.Notes = append(t.Notes,
		"dual-module gains are small when both phases are memory-bound on the same rank — the INT4 datapath, not the overlap, carries ENMC's speedup in this model")
	return t, nil
}

// ExtBeam evaluates the paper's beam-search use case (Section 3:
// "we only use the top-K values … where K is the beam search size"):
// beam decoding with a screened scorer versus the exact scorer, at
// several beam widths and candidate budgets.
func ExtBeam(o QualityOptions) (*Table, error) {
	o.defaults()
	t := &Table{
		Title:  "Extension — beam search with approximate screening (GNMT config)",
		Header: []string{"beam", "budget", "token agreement", "logprob ratio"},
	}
	p, err := prepare(workload.Table2()[2], o) // GNMT
	if err != nil {
		return nil, err
	}
	dec := p.dec
	n := o.Sentences
	if n > len(p.inst.Test) {
		n = len(p.inst.Test)
	}

	for _, width := range []int{1, 2, 4} {
		exactScorer := p.inst.ExactScorer(width)
		var refs []workload.Hypothesis
		for i := 0; i < n; i++ {
			refs = append(refs, dec.BeamDecode(p.inst.Test[i], o.SentenceLen, width, exactScorer))
		}
		for _, frac := range []float64{0.02, 0.05} {
			m := int(frac * float64(p.spec.Categories))
			if m < width {
				m = width
			}
			asScorer := workload.ScorerFrom(func(h []float32) []float32 {
				return core.ClassifyApprox(p.inst.Classifier, p.scr, h, core.TopM(m)).Mixed
			}, width)
			match, total := 0, 0
			var lpAS, lpExact float64
			for i := 0; i < n; i++ {
				hyp := dec.BeamDecode(p.inst.Test[i], o.SentenceLen, width, asScorer)
				for t := range hyp.Tokens {
					if t < len(refs[i].Tokens) && hyp.Tokens[t] == refs[i].Tokens[t] {
						match++
					}
					total++
				}
				lpAS += hyp.LogProb
				lpExact += refs[i].LogProb
			}
			ratio := 1.0
			if lpExact != 0 {
				ratio = lpAS / lpExact
			}
			t.AddRow(fmt.Sprint(width), fmt.Sprintf("%.0f%%", frac*100),
				f3(float64(match)/float64(total)), f3(ratio))
		}
	}
	t.Notes = append(t.Notes,
		"agreement near 1 means screening preserves the whole beam, not just the argmax — the top-K accuracy requirement of Section 3")
	return t, nil
}

// ExtGPU reproduces the Fig. 3 motivation quantitatively: full
// classification time on a V100-class GPU versus the CPU and the ENMC
// system as categories scale past device-memory capacity. The GPU
// wins while the classifier is resident, collapses across the
// capacity cliff, and the pooled-memory NMP design keeps scaling.
func ExtGPU(o PerfOptions) (*Table, error) {
	o.defaults()
	t := &Table{
		Title:  "Extension — GPU capacity cliff (full classification, d=512, batch 1)",
		Header: []string{"categories", "weights GB", "GPU ms", "CPU ms", "ENMC ms (screened)"},
	}
	cpu := cpuhost.Xeon8280()
	gpu := cpuhost.V100()
	for _, l := range []int{1_000_000, 4_000_000, 8_000_000, 16_000_000, 50_000_000, 100_000_000} {
		spec := workload.Spec{Categories: l, Hidden: 512, Application: "Recommendation"}
		task := taskFor(spec, 1, o.EnergyCandidateFraction)
		en, err := sysFor(nmp.ENMC(), o.SampleRows).Run(task, compiler.ModeScreened)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(l),
			f1(spec.WeightBytes()/(1<<30)),
			f2(gpu.TimeFull(l, 512, 1)*1e3),
			f2(cpu.TimeFull(l, 512, 1)*1e3),
			f2(en.Seconds*1e3))
	}
	t.Notes = append(t.Notes,
		"the GPU column jumps ~2 orders of magnitude at its 16 GB capacity (weights overflow to PCIe), while the NMP memory pool keeps scaling — the paper's Fig. 3 argument")
	return t, nil
}
