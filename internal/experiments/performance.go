package experiments

import (
	"fmt"

	"enmc/internal/compiler"
	"enmc/internal/core"
	"enmc/internal/cpuhost"
	"enmc/internal/nmp"
	"enmc/internal/quant"
	"enmc/internal/system"
	"enmc/internal/workload"
)

// PerfOptions sizes the architecture-level experiments.
type PerfOptions struct {
	// Batches are the batch sizes to sweep (Fig. 13 uses 1, 2, 4).
	Batches []int
	// CandidateFraction is m/l (the paper's operating points imply
	// ≈1/50: "reduces the number of candidates by 50×").
	CandidateFraction float64
	// EnergyCandidateFraction is the m/l used by the energy and
	// scalability studies (Fig. 14/15), where the threshold calibrated
	// for production quality admits ≈10%% of classes.
	EnergyCandidateFraction float64
	// SampleRows bounds per-rank simulation (0 = library default).
	SampleRows int
}

func (o *PerfOptions) defaults() {
	if len(o.Batches) == 0 {
		o.Batches = []int{1, 2, 4}
	}
	if o.CandidateFraction <= 0 {
		o.CandidateFraction = 1.0 / 50
	}
	if o.EnergyCandidateFraction <= 0 {
		o.EnergyCandidateFraction = 1.0 / 10
	}
}

// taskFor builds the compiler task of a workload spec.
func taskFor(s workload.Spec, batch int, candFrac float64) compiler.Task {
	m := int(candFrac * float64(s.Categories))
	if m < 1 {
		m = 1
	}
	return compiler.Task{
		Categories: s.Categories,
		Hidden:     s.Hidden,
		Reduced:    s.Hidden / 4,
		Candidates: m,
		Batch:      batch,
		Sigmoid:    s.Application == "Recommendation",
	}
}

func sysFor(d nmp.Design, sampleRows int) system.Config {
	cfg := system.Default(d)
	if sampleRows > 0 {
		cfg.SampleRows = sampleRows
	}
	return cfg
}

// Fig13 regenerates the performance comparison: CPU+AS, NDA,
// Chameleon, TensorDIMM and ENMC (all running approximate screening),
// normalized to the vanilla-CPU full-classification baseline, for
// batch sizes 1/2/4 across the Table 2 workloads.
func Fig13(o PerfOptions) (*Table, error) {
	o.defaults()
	t := &Table{
		Title:  "Fig. 13 — speedup over vanilla CPU (all schemes use approximate screening)",
		Header: []string{"workload", "batch", "CPU+AS", "NDA", "Chameleon", "TensorDIMM", "ENMC"},
	}
	cpu := cpuhost.Xeon8280()
	sums := map[string]float64{}
	count := 0
	for _, spec := range workload.Table2() {
		for _, batch := range o.Batches {
			task := taskFor(spec, batch, o.CandidateFraction)
			base := cpu.TimeFull(spec.Categories, spec.Hidden, batch) / float64(batch)
			cpuAS := cpu.TimeScreened(spec.Categories, spec.Hidden, task.Reduced, task.Candidates, batch, quant.INT4) / float64(batch)
			row := []string{spec.Name, fmt.Sprint(batch), fmtX(base / cpuAS)}
			sums["CPU+AS"] += base / cpuAS
			for _, d := range nmp.All() {
				res, err := sysFor(d, o.SampleRows).Run(task, compiler.ModeScreened)
				if err != nil {
					return nil, err
				}
				sp := base / res.PerInferenceSeconds
				row = append(row, fmtX(sp))
				sums[d.Target.Name] += sp
			}
			t.AddRow(row...)
			count++
		}
	}
	n := float64(count)
	t.AddRow("geo/avg", "-", fmtX(sums["CPU+AS"]/n), fmtX(sums["NDA"]/n),
		fmtX(sums["Chameleon"]/n), fmtX(sums["TensorDIMM"]/n), fmtX(sums["ENMC"]/n))
	t.Notes = append(t.Notes,
		"paper averages: CPU+AS 7.3x, ENMC 56.5x over CPU; ENMC vs NDA/Chameleon/TensorDIMM = 3.5x/5.6x/2.7x")
	return t, nil
}

// Fig14 regenerates the energy comparison: ENMC (screened pipeline)
// versus TensorDIMM and TensorDIMM-Large running their native full
// classification, broken into DRAM static / DRAM access / logic, all
// normalized to TensorDIMM.
func Fig14(o PerfOptions) (*Table, error) {
	o.defaults()
	t := &Table{
		Title:  "Fig. 14 — energy breakdown, normalized to TensorDIMM",
		Header: []string{"workload", "design", "static", "access", "logic", "total"},
	}
	batch := 2
	var ratioSum, ratioLargeSum float64
	var n int
	for _, spec := range workload.Table2() {
		task := taskFor(spec, batch, o.EnergyCandidateFraction)

		td, err := sysFor(nmp.TensorDIMM(), o.SampleRows).Run(task, compiler.ModeFull)
		if err != nil {
			return nil, err
		}
		tdl, err := sysFor(nmp.TensorDIMMLarge(), o.SampleRows).Run(task, compiler.ModeFull)
		if err != nil {
			return nil, err
		}
		en, err := sysFor(nmp.ENMC(), o.SampleRows).Run(task, compiler.ModeScreened)
		if err != nil {
			return nil, err
		}

		base := td.Energy.TotalJ()
		for _, r := range []system.Result{td, tdl, en} {
			t.AddRow(spec.Name, r.Design,
				f3(r.Energy.DRAMStaticJ/base),
				f3(r.Energy.DRAMAccessJ/base),
				f3(r.Energy.LogicJ/base),
				f3(r.Energy.TotalJ()/base))
		}
		ratioSum += td.Energy.TotalJ() / en.Energy.TotalJ()
		ratioLargeSum += tdl.Energy.TotalJ() / en.Energy.TotalJ()
		n++
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured average reduction: %.1fx vs TensorDIMM, %.1fx vs TensorDIMM-Large (paper: 5.0x / 8.4x)",
			ratioSum/float64(n), ratioLargeSum/float64(n)),
		"TensorDIMM/TD-Large run their native full classification; ENMC runs the screened pipeline")
	return t, nil
}

// Fig15 regenerates the end-to-end scalability study: the XMLCNN
// front-end held fixed, classification scaled through Amazon-670K,
// S1M, S10M and S100M; TensorDIMM, TensorDIMM-Large and ENMC
// normalized to the CPU baseline.
func Fig15(o PerfOptions) (*Table, error) {
	o.defaults()
	t := &Table{
		Title:  "Fig. 15 — end-to-end scalability (XMLCNN front-end fixed)",
		Header: []string{"dataset", "TensorDIMM", "TD-Large", "ENMC", "ENMC/TD", "ENMC/TD-L"},
	}
	cpu := cpuhost.Xeon8280()
	specs := append([]workload.Spec{workload.Table2()[3]}, workload.Synthetic()...)
	batch := 1
	for _, spec := range specs {
		task := taskFor(spec, batch, o.EnergyCandidateFraction)
		front := cpu.Time(frontEndOps(spec))
		cpuTotal := front + cpu.TimeFull(spec.Categories, spec.Hidden, batch)

		td, err := sysFor(nmp.TensorDIMM(), o.SampleRows).Run(task, compiler.ModeFull)
		if err != nil {
			return nil, err
		}
		tdl, err := sysFor(nmp.TensorDIMMLarge(), o.SampleRows).Run(task, compiler.ModeFull)
		if err != nil {
			return nil, err
		}
		en, err := sysFor(nmp.ENMC(), o.SampleRows).Run(task, compiler.ModeScreened)
		if err != nil {
			return nil, err
		}

		spTD := cpuTotal / (front + td.Seconds)
		spTDL := cpuTotal / (front + tdl.Seconds)
		spEN := cpuTotal / (front + en.Seconds)
		t.AddRow(spec.Name, fmtX(spTD), fmtX(spTDL), fmtX(spEN),
			f2(spEN/spTD), f2(spEN/spTDL))
	}
	t.Notes = append(t.Notes,
		"paper: ENMC/TensorDIMM grows from 2.2x to 7.1x and ENMC/TD-Large from 1.6x to 4.2x as categories scale")
	return t, nil
}

func frontEndOps(s workload.Spec) core.OpCount {
	return core.OpCount{
		FP32MACs: s.FrontEnd.Ops / 2,
		Bytes:    s.FrontEnd.Params * 4,
	}
}
