package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Track IDs shared by the pipeline and simulator instrumentation.
// Chrome's trace viewer renders one swim-lane per (pid, tid); the
// constants keep the lanes stable across producers.
const (
	TrackPipeline = 0 // algorithm-level Classify/Train spans (worker 0)
	TrackCtrl     = 100
	TrackScreener = 101
	TrackExecutor = 102
	TrackDRAM     = 103
	// TrackRegistry carries the model-lifecycle spans (load /
	// canary-validate / swap) the registry manager records, so a
	// hot swap's off-request-path work shows up as its own lane
	// next to the serving pipeline.
	TrackRegistry = 104
	// TrackHTTP carries the serving layer's per-request spans (one
	// span per /v1/* request, from admission to response write) —
	// the root every cluster RPC and remote shard span nests under
	// in a distributed capture.
	TrackHTTP = 150
	// TrackClusterBase is the first cluster-router span lane: shard
	// i's RPCs (attempts, hedges, failovers) land on lane
	// TrackClusterBase+i, one swim-lane per shard so a slow or
	// flapping shard is visible at a glance in the trace viewer.
	TrackClusterBase = 200
)

// Span is one completed interval on a track. Start and Dur are in
// tracer ticks (nanoseconds by default; simulated DRAM cycles when
// the simulator owns the tracer — see SetTimebase).
type Span struct {
	Name  string
	Cat   string
	TID   int
	Start int64
	Dur   int64
	// Bytes annotates data-movement spans (0 = omitted).
	Bytes int64
	// PID is the process lane in a distributed capture: 0 is the
	// recording process itself; spans merged from a remote process
	// (a cluster shard worker's reply) carry that process's lane so
	// the trace viewer groups them under their own process header.
	PID int
	// Trace is the distributed trace ID this span belongs to (empty
	// = untraced). Exported as an arg so one Perfetto capture can be
	// filtered down to a single propagated request.
	Trace string
	// Tenant names the tenant the span's request resolved to (empty =
	// no tenancy). Exported as an arg so a capture can be filtered to
	// one tenant's traffic.
	Tenant string
}

// Tracer collects spans. The zero value is NOT ready; use NewTracer.
// A nil *Tracer is a valid receiver for every method and records
// nothing, so instrumented code needs no guards beyond passing the
// pointer through.
type Tracer struct {
	mu           sync.Mutex
	spans        []Span
	threadNames  map[int]string
	procNames    map[int]string
	ticksPerUsec float64
	epoch        time.Time
}

// NewTracer returns an empty tracer in the wall-clock timebase
// (nanosecond ticks relative to the tracer's creation).
func NewTracer() *Tracer {
	return &Tracer{
		threadNames:  map[int]string{},
		procNames:    map[int]string{},
		ticksPerUsec: 1000, // ns → µs
		epoch:        time.Now(),
	}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// SetTimebase declares how many ticks make one microsecond in the
// exported trace. The simulator sets this to its DRAM clock in MHz so
// spans recorded in cycles display in real time.
func (t *Tracer) SetTimebase(ticksPerUsec float64) {
	if t == nil || ticksPerUsec <= 0 {
		return
	}
	t.mu.Lock()
	t.ticksPerUsec = ticksPerUsec
	t.mu.Unlock()
}

// SetThreadName labels a track in the exported trace.
func (t *Tracer) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threadNames[tid] = name
	t.mu.Unlock()
}

// SetProcessName labels a process lane in the exported trace — the
// cluster router names lane 0 after itself and lane 1+i after shard
// i's worker, so a merged distributed capture reads as a process tree.
func (t *Tracer) SetProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.procNames == nil {
		t.procNames = map[int]string{}
	}
	t.procNames[pid] = name
	t.mu.Unlock()
}

// Add records one completed span.
func (t *Tracer) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Now returns the current tick in the wall-clock timebase
// (nanoseconds since the tracer was created). Nil-safe: returns 0.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Nanoseconds()
}

// AddSince records a span from a start tick (from Now) to the present
// — the one-line wall-clock instrumentation pattern:
//
//	start := tr.Now()
//	...work...
//	tr.AddSince("screen", telemetry.TrackPipeline, start)
func (t *Tracer) AddSince(name string, tid int, start int64) {
	if t == nil {
		return
	}
	t.Add(Span{Name: name, TID: tid, Start: start, Dur: t.Now() - start})
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Clear drops every recorded span (thread/process names stay) — the
// drain half of a /debug/spans?drain=1 capture, so a long-lived
// server's tracer does not grow without bound between captures.
func (t *Tracer) Clear() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}

// Global tracer: a process-wide fallback consulted by instrumented
// code paths that have no explicit tracer plumbing (the experiment
// harness behind `enmc-bench -trace`). Nil by default, so the hot
// paths see a nil tracer unless a command opts in.
var globalTracer atomic.Pointer[Tracer]

// SetGlobal installs (or, with nil, removes) the process-wide tracer.
func SetGlobal(t *Tracer) {
	globalTracer.Store(t)
}

// Global returns the process-wide tracer, or nil.
func Global() *Tracer { return globalTracer.Load() }
