package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Exposition-format parser: the validating half of promexpo. It
// exists so the tests and the CI metrics smoke (cmd/enmc-promlint)
// check a live scrape against the same grammar the writer claims to
// emit, instead of grepping for substrings.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromText is a parsed exposition payload.
type PromText struct {
	// Types maps metric family name → declared type.
	Types map[string]string
	// Samples in input order.
	Samples []PromSample
}

// ParsePrometheus parses text exposition format, enforcing the line
// grammar: `# TYPE name type`, `# HELP ...`, comments, and
// `name[{labels}] value [timestamp]` samples with escaped label
// values. It does not enforce cross-line invariants — Validate does.
func ParsePrometheus(r io.Reader) (*PromText, error) {
	out := &PromText{Types: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				if !validMetricName(fields[2]) {
					return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[2])
				}
				if prev, dup := out.Types[fields[2]]; dup && prev != fields[3] {
					return nil, fmt.Errorf("line %d: metric %q re-declared as %s (was %s)", lineNo, fields[2], fields[3], prev)
				}
				out.Types[fields[2]] = fields[3]
			}
			continue // HELP and free comments pass through
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out.Samples = append(out.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func parseSampleLine(line string) (PromSample, error) {
	s := PromSample{}
	rest := line
	// Metric name runs to '{', whitespace, or end.
	i := strings.IndexAny(rest, "{ \t")
	if i < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabelBlock(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q: want value [timestamp] after name", line)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %w", line, err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp: %w", line, err)
		}
	}
	return s, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabelBlock consumes `{k="v",...}` handling \\, \" and \n
// escapes, returning the labels and the unconsumed tail.
func parseLabelBlock(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		// Optional trailing comma then '}' ends the block.
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return nil, "", fmt.Errorf("label block %q: missing '='", s)
		}
		key := s[i : i+j]
		if !validMetricName(key) {
			return nil, "", fmt.Errorf("label block %q: invalid label name %q", s, key)
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("label block %q: label value must be quoted", s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("label block %q: unterminated label value", s)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("label block %q: dangling escape", s)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label block %q: unknown escape \\%c", s, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("label block %q: duplicate label %q", s, key)
		}
		labels[key] = val.String()
	}
}

// Value returns the first sample matching name and the given label
// subset (nil matches any labels).
func (p *PromText) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range p.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// labelKeyWithoutLe canonicalizes a sample's labels minus "le" — the
// per-series grouping key for histogram validation.
func labelKeyWithoutLe(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// Validate enforces the cross-line invariants a Prometheus server
// would: every sample's family is type-declared consistently
// (histogram samples must use the _bucket/_sum/_count suffixes),
// histogram buckets are cumulative (monotone non-decreasing in le
// order), bounds ascend, the +Inf bucket exists, and _count equals
// the +Inf bucket.
func (p *PromText) Validate() error {
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	hists := map[string]map[string]*series{} // family → labelKey → series
	get := func(fam, lk string) *series {
		m := hists[fam]
		if m == nil {
			m = map[string]*series{}
			hists[fam] = m
		}
		sr := m[lk]
		if sr == nil {
			sr = &series{}
			m[lk] = sr
		}
		return sr
	}

	for _, s := range p.Samples {
		fam, suffix := s.Name, ""
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suf)
			if base != s.Name && p.Types[base] == "histogram" {
				fam, suffix = base, suf
				break
			}
		}
		typ, declared := p.Types[fam]
		if !declared {
			continue // untyped samples are legal exposition
		}
		if typ == "histogram" && suffix == "" {
			return fmt.Errorf("histogram %q has bare sample %q (want _bucket/_sum/_count)", fam, s.Name)
		}
		switch suffix {
		case "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s_bucket sample missing le label", fam)
			}
			bound, err := parsePromValue(le)
			if err != nil {
				return fmt.Errorf("%s_bucket: bad le %q: %w", fam, le, err)
			}
			sr := get(fam, labelKeyWithoutLe(s.Labels))
			sr.les = append(sr.les, bound)
			sr.counts = append(sr.counts, s.Value)
		case "_count":
			sr := get(fam, labelKeyWithoutLe(s.Labels))
			sr.count, sr.hasCnt = s.Value, true
		}
	}

	for fam, m := range hists {
		for lk, sr := range m {
			if len(sr.les) == 0 {
				return fmt.Errorf("histogram %s{%s} has no buckets", fam, lk)
			}
			for i := 1; i < len(sr.les); i++ {
				if sr.les[i] <= sr.les[i-1] {
					return fmt.Errorf("histogram %s{%s}: le bounds not ascending (%g after %g)",
						fam, lk, sr.les[i], sr.les[i-1])
				}
				if sr.counts[i] < sr.counts[i-1] {
					return fmt.Errorf("histogram %s{%s}: bucket counts not cumulative (%g after %g at le=%g)",
						fam, lk, sr.counts[i], sr.counts[i-1], sr.les[i])
				}
			}
			last := len(sr.les) - 1
			if !math.IsInf(sr.les[last], 1) {
				return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", fam, lk)
			}
			if sr.hasCnt && sr.count != sr.counts[last] {
				return fmt.Errorf("histogram %s{%s}: _count %g != +Inf bucket %g",
					fam, lk, sr.count, sr.counts[last])
			}
		}
	}
	return nil
}
