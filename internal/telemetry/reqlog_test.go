package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRequestLogJSON(t *testing.T) {
	var buf bytes.Buffer
	rl := NewRequestLog(&buf, RequestLogOptions{JSON: true, Slow: 100 * time.Millisecond})
	rl.Log(RequestEvent{
		RequestID:     "req-1",
		TraceID:       "trace-1",
		Tenant:        "acme",
		Method:        "POST",
		Path:          "/v1/classify",
		Status:        200,
		Latency:       3 * time.Millisecond,
		Items:         1,
		BatchSize:     8,
		QueueNs:       42_000,
		ModelVersion:  "v3",
		Partial:       true,
		MissingShards: []int{2},
	})
	var rec map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON object per line: %v\n%s", err, buf.String())
	}
	want := map[string]interface{}{
		"level": "INFO", "msg": "request",
		"req_id": "req-1", "trace_id": "trace-1", "tenant": "acme",
		"method": "POST", "path": "/v1/classify",
		"status": float64(200), "latency_us": float64(3000),
		"items": float64(1), "batch": float64(8), "queue_us": float64(42),
		"model_version": "v3", "partial": true,
	}
	for k, v := range want {
		if rec[k] != v {
			t.Errorf("field %q = %v, want %v", k, rec[k], v)
		}
	}
	if _, present := rec["slow"]; present {
		t.Error("fast request marked slow")
	}
	if _, present := rec["degraded"]; present {
		t.Error("zero-value field degraded was emitted")
	}
}

func TestRequestLogSeverity(t *testing.T) {
	cases := []struct {
		name  string
		ev    RequestEvent
		level string
		slow  bool
	}{
		{"ok", RequestEvent{Status: 200, Latency: time.Millisecond}, "INFO", false},
		{"slow", RequestEvent{Status: 200, Latency: time.Second}, "WARN", true},
		{"reject", RequestEvent{Status: 429, Latency: time.Millisecond}, "WARN", false},
		{"server error", RequestEvent{Status: 500, Latency: time.Millisecond}, "ERROR", false},
		{"transport error", RequestEvent{Status: 0, Err: "dial refused"}, "ERROR", false},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		rl := NewRequestLog(&buf, RequestLogOptions{JSON: true, Slow: 100 * time.Millisecond})
		rl.Log(c.ev)
		var rec map[string]interface{}
		if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if rec["level"] != c.level {
			t.Errorf("%s: level = %v, want %s", c.name, rec["level"], c.level)
		}
		if _, present := rec["slow"]; present != c.slow {
			t.Errorf("%s: slow marker present=%v, want %v", c.name, present, c.slow)
		}
	}
}

func TestRequestLogTextModeAndNil(t *testing.T) {
	var buf bytes.Buffer
	rl := NewRequestLog(&buf, RequestLogOptions{})
	rl.Log(RequestEvent{Status: 200, Path: "/v1/classify", RequestID: "r"})
	if !strings.Contains(buf.String(), "path=/v1/classify") {
		t.Fatalf("text mode output unexpected: %s", buf.String())
	}
	var nilLog *RequestLog
	nilLog.Log(RequestEvent{Status: 500}) // must not panic
	if nilLog.Slow() != 0 {
		t.Error("nil RequestLog reports a slow threshold")
	}
}

func TestRequestLogLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	rl := NewRequestLog(&buf, RequestLogOptions{JSON: true, Level: 4 /* warn */})
	rl.Log(RequestEvent{Status: 200})
	if buf.Len() != 0 {
		t.Fatalf("info record emitted past warn floor: %s", buf.String())
	}
	rl.Log(RequestEvent{Status: 503})
	if buf.Len() == 0 {
		t.Fatal("error record suppressed by warn floor")
	}
}
