package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace-event (the "X" complete-event
// form), plus the "M" metadata form for thread names. Timestamps and
// durations are microseconds, per the trace-event spec.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format, which Perfetto and
// chrome://tracing both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the recorded spans as Chrome trace-event
// JSON. Load the file in chrome://tracing or https://ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var spans []Span
	ticksPerUsec := 1000.0
	var names, procs map[int]string
	if t != nil {
		t.mu.Lock()
		spans = make([]Span, len(t.spans))
		copy(spans, t.spans)
		ticksPerUsec = t.ticksPerUsec
		names = make(map[int]string, len(t.threadNames))
		for k, v := range t.threadNames {
			names[k] = v
		}
		procs = make(map[int]string, len(t.procNames))
		for k, v := range t.procNames {
			procs[k] = v
		}
		t.mu.Unlock()
	}

	events := make([]chromeEvent, 0, len(spans)+len(names)+len(procs))

	// Process- and thread-name metadata first, in deterministic order.
	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		events = append(events, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  pid,
			Args: map[string]interface{}{"name": procs[pid]},
		})
	}
	tids := make([]int, 0, len(names))
	for tid := range names {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			TID:  tid,
			Args: map[string]interface{}{"name": names[tid]},
		})
	}

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, s := range spans {
		dur := float64(s.Dur) / ticksPerUsec
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Start) / ticksPerUsec,
			Dur:  &dur,
			PID:  s.PID,
			TID:  s.TID,
		}
		if s.Bytes != 0 || s.Trace != "" || s.Tenant != "" {
			ev.Args = map[string]interface{}{}
			if s.Bytes != 0 {
				ev.Args["bytes"] = s.Bytes
			}
			if s.Trace != "" {
				ev.Args["trace"] = s.Trace
			}
			if s.Tenant != "" {
				ev.Args["tenant"] = s.Tenant
			}
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
