package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"testing"
)

func TestTraceIDShapes(t *testing.T) {
	hex32 := regexp.MustCompile(`^[0-9a-f]{32}$`)
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		tid, sid, rid := NewTraceID(), NewSpanID(), NewRequestID()
		if !hex32.MatchString(tid) {
			t.Fatalf("trace ID %q is not 128-bit lowercase hex", tid)
		}
		if !hex16.MatchString(sid) || !hex16.MatchString(rid) {
			t.Fatalf("span/request ID not 64-bit lowercase hex: %q %q", sid, rid)
		}
		for _, id := range []string{tid, sid, rid} {
			if seen[id] {
				t.Fatalf("duplicate ID %q", id)
			}
			seen[id] = true
		}
	}
}

func TestTraceCtxContextRoundTrip(t *testing.T) {
	base := context.Background()
	if _, ok := TraceCtxFrom(base); ok {
		t.Fatal("empty context claims a trace")
	}
	// Invalid ctx is a no-op attach.
	if got := WithTraceCtx(base, TraceCtx{}); got != base {
		t.Fatal("WithTraceCtx allocated for an invalid TraceCtx")
	}
	tc := NewTraceCtx()
	ctx := WithTraceCtx(base, tc)
	got, ok := TraceCtxFrom(ctx)
	if !ok || got != tc {
		t.Fatalf("round-trip: got %+v ok=%v, want %+v", got, ok, tc)
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	h := http.Header{}
	if _, ok := ExtractTrace(h); ok {
		t.Fatal("extract from empty headers claims a trace")
	}
	tc := NewTraceCtx()
	InjectTrace(h, tc)
	if h.Get(HeaderTraceID) != tc.TraceID || h.Get(HeaderSpanID) != tc.SpanID {
		t.Fatalf("inject wrote %q/%q", h.Get(HeaderTraceID), h.Get(HeaderSpanID))
	}
	got, ok := ExtractTrace(h)
	if !ok || got != tc {
		t.Fatalf("extract: got %+v ok=%v, want %+v", got, ok, tc)
	}
	// Invalid inject leaves headers untouched.
	h2 := http.Header{}
	InjectTrace(h2, TraceCtx{SpanID: "deadbeef"})
	if len(h2) != 0 {
		t.Fatalf("invalid TraceCtx wrote headers: %v", h2)
	}
}

// TestChromeTraceProcessLanes checks the distributed-capture shape:
// spans carry their PID lane and trace ID into the export, and
// SetProcessName emits process_name metadata.
func TestChromeTraceProcessLanes(t *testing.T) {
	tr := NewTracer()
	tr.SetProcessName(0, "enmc-serve")
	tr.SetProcessName(3, "enmc-shard 2")
	tc := NewTraceCtx()
	tr.Add(Span{Name: "HTTP /v1/classify", Cat: "http", TID: TrackHTTP, Dur: 100, Trace: tc.TraceID})
	tr.Add(Span{Name: "screen", Cat: "shard", TID: 1, PID: 3, Start: 10, Dur: 50, Trace: tc.TraceID})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Events []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Pid  int                    `json:"pid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v\n%s", err, buf.String())
	}
	procNames := map[int]string{}
	pidsWithSpans := map[int]bool{}
	for _, ev := range doc.Events {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procNames[ev.Pid], _ = ev.Args["name"].(string)
		case ev.Ph == "X":
			pidsWithSpans[ev.Pid] = true
			if tr, _ := ev.Args["trace"].(string); tr != tc.TraceID {
				t.Errorf("span %q: trace arg %q, want %q", ev.Name, tr, tc.TraceID)
			}
		}
	}
	if procNames[0] != "enmc-serve" || procNames[3] != "enmc-shard 2" {
		t.Errorf("process names = %v", procNames)
	}
	if !pidsWithSpans[0] || !pidsWithSpans[3] {
		t.Errorf("span PID lanes = %v, want both 0 and 3", pidsWithSpans)
	}
}

func TestTracerClear(t *testing.T) {
	tr := NewTracer()
	tr.SetProcessName(1, "worker")
	tr.Add(Span{Name: "a", Dur: 1})
	tr.Clear()
	if spans := tr.Spans(); len(spans) != 0 {
		t.Fatalf("Clear left %d spans", len(spans))
	}
	// Names survive a drain so repeated captures stay labeled.
	tr.Add(Span{Name: "b", PID: 1, Dur: 1})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"worker"`)) {
		t.Fatalf("process name lost after Clear:\n%s", buf.String())
	}
	// Nil tracer: all of it is a no-op.
	var nilTr *Tracer
	nilTr.Clear()
	nilTr.SetProcessName(0, "x")
}
