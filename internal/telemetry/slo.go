package telemetry

import (
	"sort"
	"sync"
	"time"
)

// SLO tracking: rolling-window latency quantiles, error rate and
// error-budget burn rate per endpoint.
//
// The window is a ring of fixed-duration buckets (default 5 minutes
// in 10-second steps): each request lands in the current bucket, and
// a summary merges every bucket still inside the window — so
// quantiles and rates decay stale traffic instead of averaging over
// the process's whole life, and a burst of errors stops burning the
// budget one window-length after it ends.
//
// Burn rate is the standard SRE multiplier: observed bad-event rate
// divided by the rate the objective allows (1-objective). Burn 1.0
// spends the error budget exactly at the sustainable pace; burn 10
// exhausts a 30-day budget in 3 days. Two windows are reported — the
// full window and a short "fast" suffix of it — because alerting on
// (slow AND fast) burn is what distinguishes an ongoing incident
// from the tail of a resolved one.

// SLOConfig tunes a tracker. Zero values take the defaults.
type SLOConfig struct {
	// Window is the full rolling window (default 5m).
	Window time.Duration
	// BucketDur is the ring granularity (default Window/30).
	BucketDur time.Duration
	// FastWindow is the short burn-rate window (default Window/10,
	// min one bucket).
	FastWindow time.Duration
	// Availability is the success-rate objective (default 0.999):
	// non-5xx responses / all responses.
	Availability float64
	// LatencyObjective and LatencyTarget form the latency SLO: at
	// least LatencyTarget (default 0.99) of successful requests
	// answer within LatencyObjective (default 250ms).
	LatencyObjective time.Duration
	LatencyTarget    float64
}

func (c *SLOConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	if c.BucketDur <= 0 {
		c.BucketDur = c.Window / 30
	}
	if c.BucketDur < time.Second {
		c.BucketDur = time.Second
	}
	if c.FastWindow <= 0 {
		c.FastWindow = c.Window / 10
	}
	if c.FastWindow < c.BucketDur {
		c.FastWindow = c.BucketDur
	}
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = 0.999
	}
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = 250 * time.Millisecond
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.99
	}
}

// sloBucket is one time slice of one endpoint's traffic.
type sloBucket struct {
	epoch    int64 // bucket index since the unix epoch; -1 = empty
	requests int64
	errors   int64 // 5xx (and transport-level status 0)
	slow     int64 // successes over LatencyObjective
	lat      []int64
}

// sloEndpoint is one endpoint's ring.
type sloEndpoint struct {
	ring []sloBucket
}

// SLO is a rolling-window tracker over named endpoints. Safe for
// concurrent use; Observe is one mutex acquisition plus integer
// arithmetic, which is noise at HTTP-request granularity.
type SLO struct {
	cfg    SLOConfig
	bounds []float64 // latency histogram bounds shared by all buckets

	mu        sync.Mutex
	endpoints map[string]*sloEndpoint

	// now is stubbed by tests.
	now func() time.Time
}

// NewSLO builds a tracker.
func NewSLO(cfg SLOConfig) *SLO {
	cfg.defaults()
	return &SLO{
		cfg:       cfg,
		bounds:    LatencyBuckets(),
		endpoints: map[string]*sloEndpoint{},
		now:       time.Now,
	}
}

// Config returns the tracker's resolved configuration.
func (s *SLO) Config() SLOConfig { return s.cfg }

func (s *SLO) nBuckets() int {
	n := int(s.cfg.Window / s.cfg.BucketDur)
	if n < 1 {
		n = 1
	}
	return n
}

// Observe records one served request. Nil-safe.
func (s *SLO) Observe(endpoint string, status int, latency time.Duration) {
	if s == nil {
		return
	}
	epoch := s.now().UnixNano() / int64(s.cfg.BucketDur)
	s.mu.Lock()
	defer s.mu.Unlock()
	ep := s.endpoints[endpoint]
	if ep == nil {
		ep = &sloEndpoint{ring: make([]sloBucket, s.nBuckets())}
		for i := range ep.ring {
			ep.ring[i].epoch = -1
		}
		s.endpoints[endpoint] = ep
	}
	b := &ep.ring[int(epoch)%len(ep.ring)]
	if b.epoch != epoch {
		// The slot belongs to an old cycle: recycle it in place.
		*b = sloBucket{epoch: epoch, lat: b.lat[:0]}
		if cap(b.lat) == 0 {
			b.lat = make([]int64, 0, len(s.bounds)+1)
		}
		b.lat = b.lat[:cap(b.lat)]
		for i := range b.lat {
			b.lat[i] = 0
		}
	}
	if len(b.lat) != len(s.bounds)+1 {
		b.lat = make([]int64, len(s.bounds)+1)
	}
	b.requests++
	if status >= 500 || status == 0 {
		b.errors++
	} else {
		if latency > s.cfg.LatencyObjective {
			b.slow++
		}
		// Latency quantiles are over answered-successfully requests:
		// a fast 500 must not flatter the latency SLO.
		b.lat[latBucket(s.bounds, float64(latency))]++
	}
}

func latBucket(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// EndpointSLO is one endpoint's rolling-window summary.
type EndpointSLO struct {
	Endpoint string `json:"endpoint"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	// ErrorRate is errors/requests over the window.
	ErrorRate float64 `json:"error_rate"`
	// ErrorBurnRate is ErrorRate / (1 - Availability): 1.0 spends
	// the availability budget exactly at the sustainable pace.
	ErrorBurnRate float64 `json:"error_burn_rate"`
	// FastBurnRate is the same ratio over the short FastWindow
	// suffix — the "is it still burning right now" signal.
	FastBurnRate float64 `json:"fast_burn_rate"`
	// SlowRate is the fraction of successes over LatencyObjective;
	// LatencyBurnRate is SlowRate / (1 - LatencyTarget).
	SlowRate        float64 `json:"slow_rate"`
	LatencyBurnRate float64 `json:"latency_burn_rate"`
	P50Ms           float64 `json:"p50_ms"`
	P90Ms           float64 `json:"p90_ms"`
	P99Ms           float64 `json:"p99_ms"`
}

// SLOSummary is the GET /v1/slo body.
type SLOSummary struct {
	WindowSeconds      float64       `json:"window_seconds"`
	FastWindowSeconds  float64       `json:"fast_window_seconds"`
	Availability       float64       `json:"availability_objective"`
	LatencyObjectiveMs float64       `json:"latency_objective_ms"`
	LatencyTarget      float64       `json:"latency_target"`
	Endpoints          []EndpointSLO `json:"endpoints"`
}

// Summary computes the rolling-window view, endpoint-sorted.
func (s *SLO) Summary() SLOSummary {
	out := SLOSummary{}
	if s == nil {
		return out
	}
	out.WindowSeconds = s.cfg.Window.Seconds()
	out.FastWindowSeconds = s.cfg.FastWindow.Seconds()
	out.Availability = s.cfg.Availability
	out.LatencyObjectiveMs = float64(s.cfg.LatencyObjective) / 1e6
	out.LatencyTarget = s.cfg.LatencyTarget

	nowEpoch := s.now().UnixNano() / int64(s.cfg.BucketDur)
	oldest := nowEpoch - int64(s.nBuckets()) + 1
	fastOldest := nowEpoch - int64(s.cfg.FastWindow/s.cfg.BucketDur) + 1

	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.endpoints))
	for name := range s.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	errBudget := 1 - s.cfg.Availability
	latBudget := 1 - s.cfg.LatencyTarget
	merged := make([]int64, len(s.bounds)+1)
	for _, name := range names {
		ep := s.endpoints[name]
		e := EndpointSLO{Endpoint: name}
		var slow, ok int64
		var fastReq, fastErr int64
		for i := range merged {
			merged[i] = 0
		}
		for i := range ep.ring {
			b := &ep.ring[i]
			if b.epoch < oldest { // empty (-1) or aged out
				continue
			}
			e.Requests += b.requests
			e.Errors += b.errors
			slow += b.slow
			if b.epoch >= fastOldest {
				fastReq += b.requests
				fastErr += b.errors
			}
			for j, c := range b.lat {
				merged[j] += c
				ok += c
			}
		}
		if e.Requests > 0 {
			e.ErrorRate = float64(e.Errors) / float64(e.Requests)
			e.ErrorBurnRate = e.ErrorRate / errBudget
		}
		if fastReq > 0 {
			e.FastBurnRate = (float64(fastErr) / float64(fastReq)) / errBudget
		}
		if ok > 0 {
			e.SlowRate = float64(slow) / float64(ok)
			e.LatencyBurnRate = e.SlowRate / latBudget
			e.P50Ms = s.quantileMs(merged, ok, 0.50)
			e.P90Ms = s.quantileMs(merged, ok, 0.90)
			e.P99Ms = s.quantileMs(merged, ok, 0.99)
		}
		out.Endpoints = append(out.Endpoints, e)
	}
	return out
}

// quantileMs interpolates the q-quantile (in milliseconds) from the
// merged latency counts — same estimator as HistogramSnapshot.
func (s *SLO) quantileMs(counts []int64, total int64, q float64) float64 {
	snap := HistogramSnapshot{Count: total}
	snap.Buckets = make([]Bucket, len(counts))
	for i, c := range counts {
		if i < len(s.bounds) {
			snap.Buckets[i] = Bucket{UpperBound: s.bounds[i], Count: c}
		} else {
			snap.Buckets[i] = Bucket{Overflow: true, Count: c}
		}
	}
	return snap.Quantile(q) / 1e6
}

// Publish writes the current summary into reg as labeled gauges —
// the scrape-time collector hook for PrometheusHandler, so burn
// rates appear on /metrics without per-request gauge math:
//
//	slo_error_budget_burn{endpoint="/v1/classify",window="5m0s"} 0.4
//	slo_error_budget_burn{endpoint="/v1/classify",window="30s"}  0
//	slo_latency_budget_burn{endpoint="/v1/classify"}             0.1
//	slo_error_rate{endpoint="/v1/classify"}                      0.0004
//	slo_latency_p99_ms{endpoint="/v1/classify"}                  12.8
func (s *SLO) Publish(reg *Registry) {
	if s == nil || reg == nil {
		return
	}
	sum := s.Summary()
	slowWin := s.cfg.Window.String()
	fastWin := s.cfg.FastWindow.String()
	for _, e := range sum.Endpoints {
		l := map[string]string{"endpoint": e.Endpoint}
		lw := map[string]string{"endpoint": e.Endpoint, "window": slowWin}
		lf := map[string]string{"endpoint": e.Endpoint, "window": fastWin}
		reg.Gauge(LabeledName("slo_error_budget_burn", lw)).Set(e.ErrorBurnRate)
		reg.Gauge(LabeledName("slo_error_budget_burn", lf)).Set(e.FastBurnRate)
		reg.Gauge(LabeledName("slo_latency_budget_burn", l)).Set(e.LatencyBurnRate)
		reg.Gauge(LabeledName("slo_error_rate", l)).Set(e.ErrorRate)
		reg.Gauge(LabeledName("slo_requests_window", l)).Set(float64(e.Requests))
		reg.Gauge(LabeledName("slo_latency_p50_ms", l)).Set(e.P50Ms)
		reg.Gauge(LabeledName("slo_latency_p99_ms", l)).Set(e.P99Ms)
	}
}
