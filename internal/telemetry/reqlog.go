package telemetry

import (
	"context"
	"io"
	"log/slog"
	"time"
)

// Structured request logging: one slog record per served request,
// carrying the correlation identity (request ID, trace ID), the
// serving outcome (status, latency, model version, shard fan-out
// result) and tenant-ready fields — the log line that lets a slow or
// failed request be chased across the fleet by quoting its ID.
//
// A nil *RequestLog is a valid receiver that records nothing, so the
// serving layer threads the pointer unconditionally and the
// logging-off path costs a nil check.

// RequestEvent is everything one request log record carries. Zero
// fields are omitted from the output.
type RequestEvent struct {
	RequestID string
	TraceID   string
	// Tenant is the caller identity (X-Enmc-Tenant) — recorded now so
	// logs are already per-tenant attributable when multi-tenant QoS
	// (ROADMAP item 3) lands.
	Tenant  string
	Method  string
	Path    string
	Status  int
	Latency time.Duration
	// Items is the number of classifications carried (batch size for
	// /v1/classify_batch, shard batch for /v1/shard/screen, else 1).
	Items int
	// BatchSize is the micro-batch the request was flushed in.
	BatchSize    int
	QueueNs      int64
	ModelVersion string
	Degraded     bool
	// Partial/MissingShards record the shard fan-out outcome: a merge
	// served without every shard's candidates.
	Partial       bool
	MissingShards []int
	Err           string
}

// RequestLogOptions tunes NewRequestLog.
type RequestLogOptions struct {
	// JSON selects slog's JSON handler (one object per line); false
	// renders logfmt-style text.
	JSON bool
	// Slow is the latency threshold past which a request logs at
	// Warn with slow=true (0 disables slow marking).
	Slow time.Duration
	// Level is the minimum level emitted (default Info).
	Level slog.Level
}

// RequestLog emits one structured record per request.
type RequestLog struct {
	l    *slog.Logger
	slow time.Duration
}

// NewRequestLog builds a request logger writing to w.
func NewRequestLog(w io.Writer, opts RequestLogOptions) *RequestLog {
	ho := &slog.HandlerOptions{Level: opts.Level}
	var h slog.Handler
	if opts.JSON {
		h = slog.NewJSONHandler(w, ho)
	} else {
		h = slog.NewTextHandler(w, ho)
	}
	return &RequestLog{l: slog.New(h), slow: opts.Slow}
}

// Slow reports the configured slow-request threshold.
func (l *RequestLog) Slow() time.Duration {
	if l == nil {
		return 0
	}
	return l.slow
}

// Log emits one request record. Severity: 5xx/transport errors log
// at Error, requests over the slow threshold (and 4xx rejections) at
// Warn, everything else at Info.
func (l *RequestLog) Log(e RequestEvent) {
	if l == nil {
		return
	}
	level := slog.LevelInfo
	slow := l.slow > 0 && e.Latency >= l.slow
	switch {
	case e.Status >= 500 || e.Status == 0:
		level = slog.LevelError
	case slow || e.Status >= 400:
		level = slog.LevelWarn
	}
	if !l.l.Enabled(context.Background(), level) {
		return
	}
	attrs := make([]slog.Attr, 0, 16)
	attrs = append(attrs,
		slog.String("req_id", e.RequestID),
		slog.String("method", e.Method),
		slog.String("path", e.Path),
		slog.Int("status", e.Status),
		slog.Int64("latency_us", e.Latency.Microseconds()),
	)
	if e.TraceID != "" {
		attrs = append(attrs, slog.String("trace_id", e.TraceID))
	}
	if e.Tenant != "" {
		attrs = append(attrs, slog.String("tenant", e.Tenant))
	}
	if e.Items > 0 {
		attrs = append(attrs, slog.Int("items", e.Items))
	}
	if e.BatchSize > 0 {
		attrs = append(attrs, slog.Int("batch", e.BatchSize))
	}
	if e.QueueNs > 0 {
		attrs = append(attrs, slog.Int64("queue_us", e.QueueNs/1e3))
	}
	if e.ModelVersion != "" {
		attrs = append(attrs, slog.String("model_version", e.ModelVersion))
	}
	if e.Degraded {
		attrs = append(attrs, slog.Bool("degraded", true))
	}
	if e.Partial {
		attrs = append(attrs, slog.Bool("partial", true),
			slog.Any("missing_shards", e.MissingShards))
	}
	if slow {
		attrs = append(attrs, slog.Bool("slow", true))
	}
	if e.Err != "" {
		attrs = append(attrs, slog.String("error", e.Err))
	}
	l.l.LogAttrs(context.Background(), level, "request", attrs...)
}
