package telemetry

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func parseAndValidate(t *testing.T, text string) *PromText {
	t.Helper()
	p, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	return p
}

func TestPromExpoNameSanitization(t *testing.T) {
	cases := map[string]string{
		"cluster.shard_rpc_total": "cluster_shard_rpc_total",
		"9lives":                  "_9lives",
		"a b/c-d":                 "a_b_c_d",
		"ok_name:sub":             "ok_name:sub",
		"":                        "_",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromExpoLabelEscaping round-trips hostile label values (quotes,
// backslashes, newlines) through LabeledName → WritePrometheus →
// ParsePrometheus.
func TestPromExpoLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	hostile := `path "with" quotes\and\slashes` + "\nand a newline"
	reg.Gauge(LabeledName("evil.metric", map[string]string{
		"endpoint": hostile,
		"plain":    "ok",
	})).Set(42)
	reg.Counter(LabeledName("evil.count", map[string]string{"k": `\"`})).Add(7)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Contains(text, "slashes\nand") {
		t.Fatalf("raw newline leaked into a label value:\n%s", text)
	}
	p := parseAndValidate(t, text)
	v, found := p.Value("evil_metric", map[string]string{"endpoint": hostile, "plain": "ok"})
	if !found || v != 42 {
		t.Fatalf("hostile label value did not round-trip: found=%v v=%g\n%s", found, v, text)
	}
	if v, found := p.Value("evil_count", map[string]string{"k": `\"`}); !found || v != 7 {
		t.Fatalf("backslash-quote label did not round-trip: found=%v v=%g", found, v)
	}
}

// TestPromExpoHistogram checks cumulative buckets, the +Inf bound,
// and _sum/_count against a histogram with known contents.
func TestPromExpoHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("rpc.latency_ns", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 50, 500, 5000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	p := parseAndValidate(t, buf.String())

	wantBuckets := map[string]float64{"10": 1, "100": 3, "1000": 4, "+Inf": 5}
	for le, want := range wantBuckets {
		got, ok := p.Value("rpc_latency_ns_bucket", map[string]string{"le": le})
		if !ok || got != want {
			t.Errorf("bucket le=%s = %g (found=%v), want %g", le, got, ok, want)
		}
	}
	if got, _ := p.Value("rpc_latency_ns_count", nil); got != 5 {
		t.Errorf("_count = %g, want 5", got)
	}
	if got, _ := p.Value("rpc_latency_ns_sum", nil); got != 5605 {
		t.Errorf("_sum = %g, want 5605", got)
	}
	if typ := p.Types["rpc_latency_ns"]; typ != "histogram" {
		t.Errorf("TYPE = %q, want histogram", typ)
	}
}

func TestPromExpoEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, NewRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	p := parseAndValidate(t, buf.String())
	if len(p.Samples) != 0 {
		t.Fatalf("empty registry produced %d samples", len(p.Samples))
	}
	// An empty histogram still renders a complete, valid family.
	reg := NewRegistry()
	reg.Histogram("empty.hist", LatencyBuckets())
	buf.Reset()
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	p = parseAndValidate(t, buf.String())
	if v, ok := p.Value("empty_hist_bucket", map[string]string{"le": "+Inf"}); !ok || v != 0 {
		t.Fatalf("empty histogram missing +Inf bucket (found=%v v=%g)", ok, v)
	}
}

// TestPromExpoConcurrentScrape hammers instruments while scraping the
// handler — the scrape-while-writing race the -race job guards.
func TestPromExpoConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.Counter("hammer.count")
			ga := reg.Gauge(LabeledName("hammer.gauge", map[string]string{"worker": string(rune('a' + g))}))
			h := reg.Histogram("hammer.hist", CountBuckets())
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				ga.Set(float64(i))
				h.Observe(float64(i % 1000))
			}
		}(g)
	}
	handler := PrometheusHandler(reg)
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("scrape %d: HTTP %d", i, rec.Code)
		}
		parseAndValidate(t, rec.Body.String())
	}
	close(stop)
	wg.Wait()
}

// TestPromHandlerRuntimeAndBuildInfo checks the scrape-time extras.
func TestPromHandlerRuntimeAndBuildInfo(t *testing.T) {
	rec := httptest.NewRecorder()
	PrometheusHandler(NewRegistry()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	p := parseAndValidate(t, rec.Body.String())
	if v, ok := p.Value("go_goroutines", nil); !ok || v < 1 {
		t.Errorf("go_goroutines = %g (found=%v)", v, ok)
	}
	if v, ok := p.Value("enmc_build_info", nil); !ok || v != 1 {
		t.Errorf("enmc_build_info = %g (found=%v)", v, ok)
	}
	found := false
	for _, s := range p.Samples {
		if s.Name == "enmc_build_info" {
			found = true
			if s.Labels["go_version"] == "" {
				t.Errorf("build_info missing go_version label: %v", s.Labels)
			}
		}
	}
	if !found {
		t.Error("no enmc_build_info sample")
	}
}

// TestPromHandlerCollectors verifies scrape-time collect hooks run
// before the snapshot is taken.
func TestPromHandlerCollectors(t *testing.T) {
	reg := NewRegistry()
	calls := 0
	h := PrometheusHandler(reg, func() {
		calls++
		reg.Gauge("collected.gauge").Set(float64(calls))
	})
	for i := 1; i <= 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		p := parseAndValidate(t, rec.Body.String())
		if v, ok := p.Value("collected_gauge", nil); !ok || v != float64(i) {
			t.Fatalf("scrape %d: collected_gauge = %g (found=%v)", i, v, ok)
		}
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	bad := []string{
		"name_only\n",
		"bad-name 1\n",
		"ok{unterminated=\"v 1\n",
		"ok{k=\"bad\\q\"} 1\n",
		"ok{k=\"v\",k=\"v\"} 1\n",
		"# TYPE histo weird\n",
		"# TYPE histo\n",
		"ok 1 2 3\n",
		"ok notanumber\n",
	}
	for _, text := range bad {
		if _, err := ParsePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("parser accepted malformed input %q", text)
		}
	}
}

func TestValidateCatchesBrokenHistograms(t *testing.T) {
	cases := map[string]string{
		"non-cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n",
		"missing +Inf":   "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"2\"} 2\n",
		"count mismatch": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 9\n",
		"unsorted le":    "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n",
		"bare sample":    "# TYPE h histogram\nh 3\n",
	}
	for name, text := range cases {
		p, err := ParsePrometheus(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: should parse (validation is separate): %v", name, err)
		}
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken histogram:\n%s", name, text)
		}
	}
}

func TestFormatPromValue(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1.5:          "1.5",
		0:            "0",
	}
	for in, want := range cases {
		if got := formatPromValue(in); got != want {
			t.Errorf("formatPromValue(%g) = %q, want %q", in, got, want)
		}
	}
	if got := formatPromValue(math.NaN()); got != "NaN" {
		t.Errorf("NaN renders as %q", got)
	}
}
