package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"net/http"
	"sync"
	"sync/atomic"
)

// Trace-context propagation: the serving layer mints one TraceCtx per
// inbound request, the cluster router ships it to shard workers on
// the X-Enmc-Trace-Id / X-Enmc-Span-Id headers, and each worker
// records its spans under that trace and returns them inline in the
// shard reply — so a single Chrome-trace/Perfetto export from the
// router shows the whole fleet's timeline for one request.
//
// IDs are W3C-traceparent-shaped (128-bit trace ID, 64-bit span ID,
// lowercase hex) but travel on ENMC-private headers: the shard wire
// protocol is internal, and private headers keep a fronting proxy
// from silently rewriting them.

// Wire header names for cross-process trace propagation.
const (
	HeaderTraceID = "X-Enmc-Trace-Id"
	HeaderSpanID  = "X-Enmc-Span-Id"
	// HeaderRequestID carries (and echoes) the per-request ID every
	// /v1/* response is stamped with, so clients can quote it.
	HeaderRequestID = "X-Request-Id"
)

// TraceCtx identifies one request's position in a distributed trace:
// the trace it belongs to and the span that is its parent on the
// other side of a process boundary. The zero value means "untraced"
// and costs nothing to copy around.
type TraceCtx struct {
	TraceID string
	SpanID  string
}

// Valid reports whether this context names a trace.
func (tc TraceCtx) Valid() bool { return tc.TraceID != "" }

// idState is the process-local ID generator: a counter mixed into a
// crypto-seeded 64-bit process nonce, cheap enough to mint per
// request without draining the kernel entropy pool each time.
var idState struct {
	once  sync.Once
	nonce uint64
	seq   atomic.Uint64
}

func idInit() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degenerate fallback: IDs stay unique within the process.
		b = [8]byte{0xe4, 0x9c}
	}
	idState.nonce = binary.LittleEndian.Uint64(b[:])
}

// splitmix64 finalizer — turns (nonce, seq) into well-mixed ID words.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func nextID(words int) string {
	idState.once.Do(idInit)
	n := idState.seq.Add(1)
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], mix(idState.nonce+n*0x9e3779b97f4a7c15))
	if words == 2 {
		binary.BigEndian.PutUint64(buf[8:], mix(idState.nonce^(n*0xd1b54a32d192ed03)))
		return hex.EncodeToString(buf[:16])
	}
	return hex.EncodeToString(buf[:8])
}

// NewTraceID mints a 128-bit lowercase-hex trace ID.
func NewTraceID() string { return nextID(2) }

// NewSpanID mints a 64-bit lowercase-hex span ID.
func NewSpanID() string { return nextID(1) }

// NewRequestID mints the per-request ID echoed on X-Request-Id.
func NewRequestID() string { return nextID(1) }

// NewTraceCtx mints a fresh root context: new trace, new root span.
func NewTraceCtx() TraceCtx {
	return TraceCtx{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

type traceCtxKey struct{}

// WithTraceCtx attaches tc to ctx (no-op for an invalid tc, so the
// untraced path never allocates a context value).
func WithTraceCtx(ctx context.Context, tc TraceCtx) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceCtxFrom extracts the trace context attached by WithTraceCtx.
func TraceCtxFrom(ctx context.Context) (TraceCtx, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceCtx)
	return tc, ok && tc.Valid()
}

// InjectTrace writes tc onto an outbound request's headers.
func InjectTrace(h http.Header, tc TraceCtx) {
	if !tc.Valid() {
		return
	}
	h.Set(HeaderTraceID, tc.TraceID)
	if tc.SpanID != "" {
		h.Set(HeaderSpanID, tc.SpanID)
	}
}

// ExtractTrace reads a propagated trace context off inbound headers.
func ExtractTrace(h http.Header) (TraceCtx, bool) {
	tc := TraceCtx{TraceID: h.Get(HeaderTraceID), SpanID: h.Get(HeaderSpanID)}
	return tc, tc.Valid()
}
