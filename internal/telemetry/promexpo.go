package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (version 0.0.4) over the registry —
// hand-rolled like the rest of the package, zero dependencies. The
// dotted registry names ("cluster.shard_rpc_total") sanitize to the
// Prometheus grammar ("cluster_shard_rpc_total"); histograms render
// with cumulative buckets and an explicit +Inf bound; labels attach
// through LabeledName, which escapes values at registration time so
// the scrape path never re-parses.

// LabeledName encodes a metric name plus labels into the canonical
// registry-key form `name{k1="v1",k2="v2"}` (keys sorted, values
// escaped per the exposition grammar: \ → \\, " → \", newline → \n).
// Instruments registered under a LabeledName render as one labeled
// series of the base metric.
func LabeledName(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeMetricName(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition-format label escapes.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// sanitizeMetricName maps an arbitrary instrument name onto the
// Prometheus name grammar [a-zA-Z_:][a-zA-Z0-9_:]* — dots (the
// registry's namespace separator) and anything else illegal become
// underscores, and a leading digit gets a '_' prefix.
func sanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitLabeled splits a registry key back into (sanitized base name,
// label block including braces). The label block was canonicalized by
// LabeledName so it passes through verbatim.
func splitLabeled(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return sanitizeMetricName(key[:i]), key[i:]
	}
	return sanitizeMetricName(key), ""
}

func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels splices extra pairs (pre-escaped, e.g. `le="0.5"`) into
// an existing canonical label block.
func mergeLabels(block string, extra string) string {
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}

type promSeries struct {
	labels string
	render func(w io.Writer, name, labels string) error
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format: one # TYPE line per metric family, counters and
// gauges as single samples, histograms as cumulative _bucket series
// with a +Inf bound plus _sum and _count.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	type family struct {
		typ    string
		series []promSeries
	}
	fams := map[string]*family{}
	add := func(key, typ string, render func(w io.Writer, name, labels string) error) {
		base, labels := splitLabeled(key)
		f := fams[base]
		if f == nil {
			f = &family{typ: typ}
			fams[base] = f
		}
		f.series = append(f.series, promSeries{labels: labels, render: render})
	}

	for key, v := range snap.Counters {
		v := v
		add(key, "counter", func(w io.Writer, name, labels string) error {
			_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, v)
			return err
		})
	}
	for key, v := range snap.Gauges {
		v := v
		add(key, "gauge", func(w io.Writer, name, labels string) error {
			_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatPromValue(v))
			return err
		})
	}
	for key, h := range snap.Histograms {
		h := h
		add(key, "histogram", func(w io.Writer, name, labels string) error {
			cum := int64(0)
			for _, b := range h.Buckets {
				cum += b.Count
				le := "+Inf"
				if !b.Overflow {
					le = formatPromValue(b.UpperBound)
				}
				lb := mergeLabels(labels, `le="`+le+`"`)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, lb, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatPromValue(h.Sum)); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count)
			return err
		})
	}

	bases := make([]string, 0, len(fams))
	for b := range fams {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, base := range bases {
		f := fams[base]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, f.typ); err != nil {
			return err
		}
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, s := range f.series {
			if err := s.render(w, base, s.labels); err != nil {
				return err
			}
		}
	}
	return nil
}

var processStart = time.Now()

// writeRuntimeMetrics appends Go runtime health (goroutines, GC, heap)
// and the build_info gauge — the standard scrape-side vitals every
// dashboard keys on, gathered at scrape time so they cost nothing
// between scrapes.
func writeRuntimeMetrics(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rev := buildRevision()
	_, err := fmt.Fprintf(w,
		"# TYPE go_goroutines gauge\ngo_goroutines %d\n"+
			"# TYPE go_heap_alloc_bytes gauge\ngo_heap_alloc_bytes %d\n"+
			"# TYPE go_heap_objects gauge\ngo_heap_objects %d\n"+
			"# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n"+
			"# TYPE go_gc_pause_seconds_total counter\ngo_gc_pause_seconds_total %s\n"+
			"# TYPE process_uptime_seconds gauge\nprocess_uptime_seconds %s\n"+
			"# TYPE enmc_build_info gauge\nenmc_build_info{go_version=\"%s\",revision=\"%s\"} 1\n",
		runtime.NumGoroutine(),
		ms.HeapAlloc,
		ms.HeapObjects,
		ms.NumGC,
		formatPromValue(float64(ms.PauseTotalNs)/1e9),
		formatPromValue(time.Since(processStart).Seconds()),
		escapeLabelValue(runtime.Version()),
		escapeLabelValue(rev))
	return err
}

func buildRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// PrometheusHandler serves reg in the text exposition format. The
// optional collect hooks run before each scrape — the SLO tracker
// uses one to publish its rolling-window gauges at scrape time
// instead of on every request.
func PrometheusHandler(reg *Registry, collect ...func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		for _, f := range collect {
			if f != nil {
				f()
			}
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, reg.Snapshot()); err != nil {
			return // client went away mid-scrape; nothing to salvage
		}
		_ = writeRuntimeMetrics(w)
	})
}
