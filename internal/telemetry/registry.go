// Package telemetry is the repo's zero-dependency observability
// layer: a named registry of atomic counters, gauges and fixed-bucket
// histograms, plus a span Tracer whose output renders as Chrome
// trace-event JSON (chrome://tracing, Perfetto).
//
// Design constraints, in order:
//
//  1. The disabled path costs nothing: a nil *Tracer is a valid
//     receiver everywhere and every instrument operation is a handful
//     of atomic ops with zero allocations — safe to leave permanently
//     wired into the Classify hot path.
//  2. Everything is safe for concurrent use; instruments are shared
//     across the worker pools the pipeline runs on.
//  3. Snapshots are plain JSON-marshalable values so commands can
//     dump them (-metrics) and expvar can publish them verbatim.
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 (last-write-wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Add atomically adds delta to the gauge (CAS loop) — the up/down
// form queue-depth and in-flight gauges need, where Set would race
// between concurrent enqueuers and dequeuers.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution: observations land in the
// first bucket whose upper bound is >= the value, with one implicit
// overflow bucket at +Inf. Observe is lock-free and allocation-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, immutable after creation
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the bucket: first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bucket is one histogram bucket in a snapshot. UpperBound is
// math.Inf(1) for the overflow bucket (marshaled as the string "inf"
// would fail, so snapshots drop the infinite bound and mark it with
// Overflow).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Overflow   bool    `json:"overflow,omitempty"`
	Count      int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets"`
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the bucket that contains it. The overflow bucket clamps to
// the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	lower := 0.0
	for _, b := range s.Buckets {
		prev := cum
		cum += b.Count
		if float64(cum) >= rank && b.Count > 0 {
			if b.Overflow {
				return lower // clamp: no finite upper bound
			}
			frac := (rank - float64(prev)) / float64(b.Count)
			return lower + frac*(b.UpperBound-lower)
		}
		if !b.Overflow {
			lower = b.UpperBound
		}
	}
	return lower
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Sum: math.Float64frombits(h.sumBits.Load()),
	}
	// Count is the sum of the bucket reads, not the separate count
	// atomic: Observe bumps the bucket first, so a scrape racing an
	// in-flight observation could otherwise report a _count one short
	// of its own +Inf cumulative bucket — Prometheus requires the two
	// to agree within one exposition.
	s.Buckets = make([]Bucket, 0, len(h.counts))
	for i := range h.counts {
		n := h.counts[i].Load()
		s.Count += n
		if i < len(h.bounds) {
			s.Buckets = append(s.Buckets, Bucket{UpperBound: h.bounds[i], Count: n})
		} else {
			s.Buckets = append(s.Buckets, Bucket{Overflow: true, Count: n})
		}
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	return s
}

// LatencyBuckets returns exponential nanosecond bounds from 1 µs to
// ~17 s (×2 steps) — the default for wall-clock latency histograms.
func LatencyBuckets() []float64 {
	b := make([]float64, 0, 25)
	for v := 1e3; v <= 17.2e9; v *= 2 {
		b = append(b, v)
	}
	return b
}

// CountBuckets returns exponential bounds from 1 to ~1M (×2 steps) —
// the default for size/cardinality histograms (candidate counts,
// batch sizes).
func CountBuckets() []float64 {
	b := make([]float64, 0, 21)
	for v := 1.0; v <= 1<<20; v *= 2 {
		b = append(b, v)
	}
	return b
}

// Registry is a named instrument store. Lookups get-or-create, so
// instrument handles can be package-level vars with no init ordering
// concerns.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every built-in instrument
// registers on.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time, JSON-marshalable copy of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every instrument's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Reset zeroes every instrument in place (handles stay valid) — test
// isolation and between-run resets in long-lived processes.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sumBits.Store(0)
		h.minBits.Store(math.Float64bits(math.Inf(1)))
		h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	}
}
