package telemetry

import "net/http"

// StatusRecorder wraps a ResponseWriter to capture the status code
// for after-the-fact instrumentation (request logs, SLO observation).
// Shared by the serving layer and the cluster worker so both report
// the same notion of "what we answered".
type StatusRecorder struct {
	http.ResponseWriter
	Code int
}

// WriteHeader records the code and forwards.
func (r *StatusRecorder) WriteHeader(code int) {
	if r.Code == 0 {
		r.Code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write implies 200 on the first write, like net/http.
func (r *StatusRecorder) Write(b []byte) (int, error) {
	if r.Code == 0 {
		r.Code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Status returns the recorded code (200 if the handler never wrote).
func (r *StatusRecorder) Status() int {
	if r.Code == 0 {
		return http.StatusOK
	}
	return r.Code
}

// Flush forwards to the underlying writer when it supports it, so
// wrapping does not break streaming handlers.
func (r *StatusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
