package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
)

var expvarOnce sync.Once

// PublishExpvar exposes the default registry's snapshot as the expvar
// variable "enmc" (visible at /debug/vars). Idempotent.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("enmc", expvar.Func(func() interface{} {
			return Default().Snapshot()
		}))
	})
}

// ServeDebug starts an HTTP server on addr exposing:
//
//	/debug/pprof/*  — net/http/pprof profiles
//	/debug/vars     — expvar, including the "enmc" registry snapshot
//	/metrics        — the default registry snapshot as plain JSON
//
// It returns the bound address (useful with ":0") after the listener
// is live; the server itself runs until the process exits.
func ServeDebug(addr string) (string, error) {
	PublishExpvar()
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(Default().Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: debug listener: %w", err)
	}
	go func() {
		// Serve on the default mux, where pprof and expvar registered.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
