package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
)

var expvarOnce sync.Once

// PublishExpvar exposes the default registry's snapshot as the expvar
// variable "enmc" (visible at /debug/vars). Idempotent.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("enmc", expvar.Func(func() interface{} {
			return Default().Snapshot()
		}))
	})
}

// MetricsJSONHandler serves the default registry snapshot as indented
// JSON — the pre-Prometheus dump format, kept for scripts.
func MetricsJSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(Default().Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// SpansHandler serves the global tracer's recorded spans as Chrome
// trace-event JSON (load in Perfetto / chrome://tracing). With
// ?drain=1 the exported spans are cleared after the copy, so a
// long-lived server can be captured repeatedly without unbounded
// growth. 404 when no global tracer is installed.
func SpansHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := Global()
		if !tr.Enabled() {
			http.Error(w, "tracing disabled (no global tracer)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteChromeTrace(w); err != nil {
			return
		}
		if r.URL.Query().Get("drain") != "" {
			tr.Clear()
		}
	})
}

// ServeDebug starts an HTTP server on addr exposing:
//
//	/debug/pprof/*  — net/http/pprof profiles
//	/debug/vars     — expvar, including the "enmc" registry snapshot
//	/debug/spans    — global tracer as Chrome trace JSON (?drain=1)
//	/metrics        — the default registry in Prometheus text format
//	/metrics.json   — the same snapshot as plain JSON
//
// It returns the bound address (useful with ":0") after the listener
// is live; the server itself runs until the process exits.
func ServeDebug(addr string) (string, error) {
	return ServeDebugWith(addr)
}

var debugOnce sync.Once

// ServeDebugWith is ServeDebug plus scrape-time collector hooks for
// the Prometheus endpoint (see PrometheusHandler).
func ServeDebugWith(addr string, collect ...func()) (string, error) {
	PublishExpvar()
	debugOnce.Do(func() {
		http.Handle("/metrics", PrometheusHandler(Default(), collect...))
		http.Handle("/metrics.json", MetricsJSONHandler())
		http.Handle("/debug/spans", SpansHandler())
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: debug listener: %w", err)
	}
	go func() {
		// Serve on the default mux, where pprof and expvar registered.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
