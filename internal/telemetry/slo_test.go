package telemetry

import (
	"testing"
	"time"
)

// testSLO builds a tracker on a stubbed clock the test can advance.
func testSLO(cfg SLOConfig) (*SLO, *time.Time) {
	s := NewSLO(cfg)
	now := time.Unix(1_000_000, 0)
	s.now = func() time.Time { return now }
	return s, &now
}

func findEndpoint(t *testing.T, sum SLOSummary, name string) EndpointSLO {
	t.Helper()
	for _, e := range sum.Endpoints {
		if e.Endpoint == name {
			return e
		}
	}
	t.Fatalf("endpoint %q missing from summary %+v", name, sum)
	return EndpointSLO{}
}

func TestSLOErrorBurnRate(t *testing.T) {
	s, _ := testSLO(SLOConfig{Window: time.Minute, BucketDur: time.Second, Availability: 0.99})
	for i := 0; i < 99; i++ {
		s.Observe("/v1/classify", 200, time.Millisecond)
	}
	s.Observe("/v1/classify", 500, time.Millisecond)

	e := findEndpoint(t, s.Summary(), "/v1/classify")
	if e.Requests != 100 || e.Errors != 1 {
		t.Fatalf("requests/errors = %d/%d", e.Requests, e.Errors)
	}
	if e.ErrorRate != 0.01 {
		t.Errorf("error rate = %g, want 0.01", e.ErrorRate)
	}
	// 1% observed on a 1% budget: burning at exactly the sustainable pace.
	if e.ErrorBurnRate < 0.999 || e.ErrorBurnRate > 1.001 {
		t.Errorf("burn rate = %g, want 1.0", e.ErrorBurnRate)
	}
}

func TestSLOWindowAgesOut(t *testing.T) {
	s, now := testSLO(SLOConfig{Window: 30 * time.Second, BucketDur: time.Second})
	s.Observe("/v1/classify", 500, time.Millisecond)
	if e := findEndpoint(t, s.Summary(), "/v1/classify"); e.Errors != 1 {
		t.Fatalf("fresh error not counted: %+v", e)
	}
	// One window later the burst has fully aged out.
	*now = now.Add(31 * time.Second)
	if e := findEndpoint(t, s.Summary(), "/v1/classify"); e.Requests != 0 || e.Errors != 0 {
		t.Fatalf("stale traffic still counted after window: %+v", e)
	}
	// And the recycled slot starts clean.
	s.Observe("/v1/classify", 200, time.Millisecond)
	if e := findEndpoint(t, s.Summary(), "/v1/classify"); e.Requests != 1 || e.Errors != 0 {
		t.Fatalf("recycled bucket kept stale counts: %+v", e)
	}
}

func TestSLOFastWindow(t *testing.T) {
	s, now := testSLO(SLOConfig{Window: 100 * time.Second, BucketDur: time.Second,
		FastWindow: 10 * time.Second, Availability: 0.9})
	// Old errors: inside the full window, outside the fast window.
	s.Observe("/v1/x", 500, 0)
	s.Observe("/v1/x", 500, 0)
	*now = now.Add(50 * time.Second)
	// Recent traffic is clean.
	for i := 0; i < 8; i++ {
		s.Observe("/v1/x", 200, 0)
	}
	e := findEndpoint(t, s.Summary(), "/v1/x")
	if e.ErrorBurnRate <= 0 {
		t.Errorf("full-window burn = %g, want > 0 (old errors still in window)", e.ErrorBurnRate)
	}
	if e.FastBurnRate != 0 {
		t.Errorf("fast burn = %g, want 0 (incident over)", e.FastBurnRate)
	}
}

func TestSLOLatencyQuantilesAndSlowRate(t *testing.T) {
	s, _ := testSLO(SLOConfig{Window: time.Minute, BucketDur: time.Second,
		LatencyObjective: 100 * time.Millisecond, LatencyTarget: 0.9})
	// 90 fast successes, 10 slow ones, plus errors whose (fast) latency
	// must not pollute the quantiles.
	for i := 0; i < 90; i++ {
		s.Observe("/v1/classify", 200, 10*time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		s.Observe("/v1/classify", 200, 500*time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		s.Observe("/v1/classify", 500, time.Microsecond)
	}
	e := findEndpoint(t, s.Summary(), "/v1/classify")
	if e.SlowRate != 0.1 {
		t.Errorf("slow rate = %g, want 0.1 (10 of 100 successes)", e.SlowRate)
	}
	// 10% slow on a 10% budget → latency burn 1.0.
	if e.LatencyBurnRate < 0.999 || e.LatencyBurnRate > 1.001 {
		t.Errorf("latency burn = %g, want 1.0", e.LatencyBurnRate)
	}
	if e.P50Ms <= 1 || e.P50Ms > 50 {
		t.Errorf("p50 = %gms, want ~10ms", e.P50Ms)
	}
	if e.P99Ms < 100 {
		t.Errorf("p99 = %gms, want in the slow tail (>=100ms)", e.P99Ms)
	}
}

func TestSLOPublishGauges(t *testing.T) {
	s, _ := testSLO(SLOConfig{Window: time.Minute, BucketDur: time.Second, Availability: 0.99})
	s.Observe("/v1/classify", 200, time.Millisecond)
	s.Observe("/v1/classify", 500, time.Millisecond)
	reg := NewRegistry()
	s.Publish(reg)
	snap := reg.Snapshot()

	winKey := LabeledName("slo_error_budget_burn",
		map[string]string{"endpoint": "/v1/classify", "window": time.Minute.String()})
	if v, ok := snap.Gauges[winKey]; !ok || v <= 0 {
		t.Errorf("burn gauge %q = %g (ok=%v)", winKey, v, ok)
	}
	reqKey := LabeledName("slo_requests_window", map[string]string{"endpoint": "/v1/classify"})
	if v := snap.Gauges[reqKey]; v != 2 {
		t.Errorf("requests gauge = %g, want 2", v)
	}
	// Nil-safety.
	var nilSLO *SLO
	nilSLO.Observe("/x", 200, 0)
	nilSLO.Publish(reg)
	_ = nilSLO.Summary()
}

func TestSLOConfigDefaults(t *testing.T) {
	s := NewSLO(SLOConfig{})
	cfg := s.Config()
	if cfg.Window != 5*time.Minute || cfg.BucketDur != 10*time.Second ||
		cfg.FastWindow != 30*time.Second || cfg.Availability != 0.999 ||
		cfg.LatencyObjective != 250*time.Millisecond || cfg.LatencyTarget != 0.99 {
		t.Fatalf("defaults resolved to %+v", cfg)
	}
}
