package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers one counter, gauge and histogram
// from many goroutines; run under -race this doubles as the data-race
// proof for the lock-free paths.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2, 4, 8})

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(id))
				h.Observe(float64(i % 10))
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Sum of 0..9 repeated: 45 * workers * perWorker/10.
	wantSum := 45.0 * workers * perWorker / 10
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %g, want %g", got, wantSum)
	}
	s := h.snapshot()
	if s.Min != 0 || s.Max != 9 {
		t.Errorf("min/max = %g/%g, want 0/9", s.Min, s.Max)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	// Values 9 land in the overflow bucket (last bound 8).
	if last := s.Buckets[len(s.Buckets)-1]; !last.Overflow || last.Count != workers*perWorker/10 {
		t.Errorf("overflow bucket = %+v", last)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 50, 99, 500, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	wantCounts := []int64{2, 2, 1, 1} // ≤10, ≤100, ≤1000, overflow
	for i, want := range wantCounts {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if q := s.Quantile(0.5); q < 10 || q > 100 {
		t.Errorf("median %g outside (10, 100]", q)
	}
	if q := s.Quantile(1); q != 1000 {
		// Top quantile clamps to the largest finite bound.
		t.Errorf("q1 = %g, want 1000", q)
	}
}

func TestRegistrySnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(2.5)
	r.Histogram("c", []float64{1}).Observe(0.5)

	s := r.Snapshot()
	if s.Counters["a"] != 3 || s.Gauges["b"] != 2.5 || s.Histograms["c"].Count != 1 {
		t.Errorf("snapshot mismatch: %+v", s)
	}
	// Snapshots are JSON-marshalable (expvar/-metrics contract), with
	// no Inf/NaN leaking from empty histograms.
	r.Histogram("empty", []float64{1})
	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Fatalf("snapshot marshal: %v", err)
	}

	r.Reset()
	s = r.Snapshot()
	if s.Counters["a"] != 0 || s.Gauges["b"] != 0 || s.Histograms["c"].Count != 0 {
		t.Errorf("reset did not zero: %+v", s)
	}
	// Instrument handles stay live after Reset.
	r.Counter("a").Inc()
	if r.Snapshot().Counters["a"] != 1 {
		t.Error("counter handle dead after Reset")
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter not idempotent")
	}
	if r.Histogram("y", []float64{1}) != r.Histogram("y", nil) {
		t.Error("Histogram not idempotent")
	}
}

// TestNilTracer proves every Tracer method is nil-receiver safe — the
// contract that lets instrumented code skip guards.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer enabled")
	}
	tr.Add(Span{Name: "x"})
	tr.AddSince("x", 0, 0)
	tr.SetTimebase(1)
	tr.SetThreadName(0, "x")
	if tr.Now() != 0 || tr.Len() != 0 || tr.Spans() != nil {
		t.Error("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
}

// TestChromeTraceGolden checks the exporter emits valid Chrome
// trace-event JSON that encoding/json consumes back with the expected
// structure and microsecond conversion.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer()
	tr.SetTimebase(2) // 2 ticks per µs
	tr.SetThreadName(7, "unit-7")
	tr.Add(Span{Name: "screen", Cat: "sim", TID: 7, Start: 10, Dur: 4, Bytes: 256})
	tr.Add(Span{Name: "filter", TID: 7, Start: 14, Dur: 2})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var out struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Cat  string                 `json:"cat"`
			Ph   string                 `json:"ph"`
			TS   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			TID  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3 (1 metadata + 2 spans)", len(out.TraceEvents))
	}
	meta := out.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "thread_name" || meta.Args["name"] != "unit-7" {
		t.Errorf("metadata event = %+v", meta)
	}
	span := out.TraceEvents[1]
	if span.Ph != "X" || span.Name != "screen" || span.Cat != "sim" || span.TID != 7 {
		t.Errorf("span event = %+v", span)
	}
	if span.TS != 5 || span.Dur != 2 { // ticks 10,4 at 2 ticks/µs
		t.Errorf("ts/dur = %g/%g, want 5/2", span.TS, span.Dur)
	}
	if b, ok := span.Args["bytes"].(float64); !ok || b != 256 {
		t.Errorf("bytes arg = %v", span.Args["bytes"])
	}
}

// TestConcurrentTracer races span recording against export.
func TestConcurrentTracer(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Add(Span{Name: "s", TID: id, Start: int64(i), Dur: 1})
			}
		}(w)
	}
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		buf.Reset()
	}
	wg.Wait()
	if tr.Len() != 4000 {
		t.Errorf("len = %d, want 4000", tr.Len())
	}
}

func TestDefaultBuckets(t *testing.T) {
	for _, bounds := range [][]float64{LatencyBuckets(), CountBuckets()} {
		if len(bounds) == 0 {
			t.Fatal("empty default buckets")
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("bounds not ascending at %d: %v", i, bounds)
			}
		}
		if math.IsInf(bounds[len(bounds)-1], 1) {
			t.Fatal("explicit +Inf bound (overflow bucket is implicit)")
		}
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	var g Gauge
	g.Set(10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
			g.Add(0.5)
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 14 {
		t.Fatalf("gauge = %v, want 14", got)
	}
}
