package tensor

import (
	"testing"
	"testing/quick"

	"enmc/internal/xrand"
)

// refTopK is a straight O(n·k) selection-by-scan reference with the
// documented ordering contract (descending value, ties toward lower
// index) — the oracle the heap-based kernels must match exactly.
func refTopK(x []float32, lo, hi, k int) []int {
	if k <= 0 || hi <= lo {
		return nil
	}
	if k > hi-lo {
		k = hi - lo
	}
	taken := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		best := -1
		for i := lo; i < hi; i++ {
			if taken[i] {
				continue
			}
			if best < 0 || x[i] > x[best] || (x[i] == x[best] && i < best) {
				best = i
			}
		}
		taken[best] = true
		out = append(out, best)
	}
	return out
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dupVec draws values from a small alphabet so ties are common — the
// ordering contract only bites when values collide.
func dupVec(r *xrand.RNG, n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(r.Intn(7)) - 3
	}
	return x
}

func TestTopKIntoMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(300)
		k := 1 + r.Intn(n+5) // occasionally k > n
		x := dupVec(r, n)
		var buf TopKBuf
		return eqInts(TopKInto(x, k, &buf), refTopK(x, 0, n, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKBufReuseAcrossCalls(t *testing.T) {
	r := xrand.New(9)
	var buf TopKBuf
	// Shrinking and growing k through the same buffer must not leak
	// state between selections.
	for _, k := range []int{5, 50, 1, 17, 50, 3} {
		x := dupVec(r, 120)
		if !eqInts(TopKInto(x, k, &buf), refTopK(x, 0, len(x), k)) {
			t.Fatalf("buffer reuse broke selection at k=%d", k)
		}
	}
}

func TestTopKRangeGlobalIndices(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(300)
		lo := r.Intn(n)
		hi := lo + r.Intn(n-lo+1)
		k := 1 + r.Intn(n)
		x := dupVec(r, n)
		var buf TopKBuf
		return eqInts(TopKRange(x, lo, hi, k, &buf), refTopK(x, lo, hi, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKMergeEqualsSerial is the parallel-selection contract: shard
// x into random disjoint ranges, take per-shard top-k, merge — the
// result must be bit-identical to a single global selection.
func TestTopKMergeEqualsSerial(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(500)
		k := 1 + r.Intn(n)
		shards := 1 + r.Intn(6)
		x := dupVec(r, n)

		lists := make([][]int, 0, shards)
		bufs := make([]TopKBuf, shards)
		chunk := (n + shards - 1) / shards
		for s := 0; s < shards; s++ {
			lo := s * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			lists = append(lists, TopKRange(x, lo, hi, k, &bufs[s]))
		}
		var merged TopKBuf
		return eqInts(TopKMerge(x, lists, k, &merged), refTopK(x, 0, n, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAboveThresholdIntoMatchesAndReuses(t *testing.T) {
	x := []float32{1, 5, 2, 5, -1}
	var dst []int
	dst = AboveThresholdInto(dst, x, 5)
	if !eqInts(dst, []int{1, 3}) {
		t.Fatalf("AboveThresholdInto = %v", dst)
	}
	// Reuse with a lower threshold: previous contents must not leak.
	dst = AboveThresholdInto(dst, x, 1)
	if !eqInts(dst, []int{0, 1, 2, 3}) {
		t.Fatalf("AboveThresholdInto reuse = %v", dst)
	}
	if got := AboveThresholdInto(dst, x, 100); len(got) != 0 {
		t.Fatalf("AboveThresholdInto empty = %v", got)
	}
}

func TestTopKZeroAllocSteadyState(t *testing.T) {
	r := xrand.New(11)
	x := dupVec(r, 4096)
	var buf TopKBuf
	TopKInto(x, 64, &buf) // warm the buffer
	allocs := testing.AllocsPerRun(20, func() {
		TopKInto(x, 64, &buf)
	})
	if allocs != 0 {
		t.Fatalf("TopKInto steady state allocates %v/op", allocs)
	}
}
