package tensor

// TopK returns the indices of the k largest values in x, in
// descending value order (ties break toward lower index). It runs in
// O(n log k) with a bounded min-heap, mirroring the top-m candidate
// search the Screener's comparator array performs in hardware.
func TopK(x []float32, k int) []int {
	var buf TopKBuf
	sel := TopKInto(x, k, &buf)
	if sel == nil {
		return nil
	}
	out := make([]int, len(sel))
	copy(out, sel)
	return out
}

// TopKBuf is reusable scratch for the allocation-free top-k variants:
// it owns the bounded heap and the output index slice, so steady-state
// selection allocates nothing. The zero value is ready to use. Slices
// returned by TopKInto/TopKRange/TopKMerge alias the buffer and stay
// valid only until the next call on the same buffer.
type TopKBuf struct {
	items []heapItem
	out   []int
}

// TopKInto is TopK with buffer-backed storage: the returned slice is
// owned by buf and is overwritten by the next selection through it.
func TopKInto(x []float32, k int, buf *TopKBuf) []int {
	return TopKRange(x, 0, len(x), k, buf)
}

// TopKRange selects the k largest values of x[lo:hi] and returns
// their *global* indices (descending value, ties toward lower index).
// This is the per-shard kernel of the parallel candidate search: each
// shard scans a disjoint row range with its own buffer, and the
// shard winners are combined with TopKMerge.
func TopKRange(x []float32, lo, hi, k int, buf *TopKBuf) []int {
	if k <= 0 || hi <= lo {
		return nil
	}
	if k > hi-lo {
		k = hi - lo
	}
	items := buf.items[:0]
	for i := lo; i < hi; i++ {
		it := heapItem{idx: i, val: x[i]}
		if len(items) < k {
			items = append(items, it)
			siftUp(items, len(items)-1)
			continue
		}
		if less(items[0], it) {
			items[0] = it
			siftDown(items, 0)
		}
	}
	buf.items = items
	return buf.extract()
}

// TopKMerge selects the k overall largest entries from the union of
// the candidate index lists (global indices into x), with the same
// ordering contract as TopK. Given per-shard top-k lists from
// TopKRange it returns exactly what a single global TopK would: the
// global winners are necessarily among the shard winners, and the
// (value, index) comparator is a total order, so the merged output is
// bit-identical to the serial selection.
func TopKMerge(x []float32, lists [][]int, k int, buf *TopKBuf) []int {
	if k <= 0 {
		return nil
	}
	items := buf.items[:0]
	for _, list := range lists {
		for _, idx := range list {
			it := heapItem{idx: idx, val: x[idx]}
			if len(items) < k {
				items = append(items, it)
				siftUp(items, len(items)-1)
				continue
			}
			if less(items[0], it) {
				items[0] = it
				siftDown(items, 0)
			}
		}
	}
	buf.items = items
	return buf.extract()
}

// extract heap-sorts the retained items (best first) and writes their
// indices into the buffer's output slice.
func (b *TopKBuf) extract() []int {
	n := len(b.items)
	if n == 0 {
		return nil
	}
	for end := n - 1; end > 0; end-- {
		b.items[0], b.items[end] = b.items[end], b.items[0]
		siftDown(b.items[:end], 0)
	}
	if cap(b.out) < n {
		b.out = make([]int, n)
	}
	b.out = b.out[:n]
	for i, it := range b.items {
		b.out[i] = it.idx
	}
	return b.out
}

// AboveThreshold returns, in ascending index order, all indices i
// with x[i] >= threshold. This models the Screener's threshold
// filter.
func AboveThreshold(x []float32, threshold float32) []int {
	var out []int
	for i, v := range x {
		if v >= threshold {
			out = append(out, i)
		}
	}
	return out
}

// AboveThresholdInto is AboveThreshold appending into dst[:0]; the
// grown slice is returned so callers can keep it as reusable scratch.
func AboveThresholdInto(dst []int, x []float32, threshold float32) []int {
	dst = dst[:0]
	for i, v := range x {
		if v >= threshold {
			dst = append(dst, i)
		}
	}
	return dst
}

type heapItem struct {
	idx int
	val float32
}

// less orders items so that the heap root is the *worst* retained
// candidate: smaller value first, and on equal values the larger
// index first so that ties break toward lower indices overall.
func less(a, b heapItem) bool {
	if a.val != b.val {
		return a.val < b.val
	}
	return a.idx > b.idx
}

// siftUp/siftDown are the hand-rolled heap primitives: the previous
// container/heap implementation boxed every Push/Pop through an
// interface{}, which cost two allocations per retained candidate —
// tens of thousands per query at serving-scale m.
func siftUp(items []heapItem, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(items[i], items[parent]) {
			return
		}
		items[i], items[parent] = items[parent], items[i]
		i = parent
	}
}

func siftDown(items []heapItem, i int) {
	n := len(items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && less(items[right], items[left]) {
			least = right
		}
		if !less(items[least], items[i]) {
			return
		}
		items[i], items[least] = items[least], items[i]
		i = least
	}
}
