package tensor

import "container/heap"

// TopK returns the indices of the k largest values in x, in
// descending value order (ties break toward lower index). It runs in
// O(n log k) with a bounded min-heap, mirroring the top-m candidate
// search the Screener's comparator array performs in hardware.
func TopK(x []float32, k int) []int {
	if k <= 0 || len(x) == 0 {
		return nil
	}
	if k > len(x) {
		k = len(x)
	}
	h := &minHeap{}
	h.items = make([]heapItem, 0, k)
	for i, v := range x {
		if len(h.items) < k {
			heap.Push(h, heapItem{idx: i, val: v})
			continue
		}
		if less(h.items[0], heapItem{idx: i, val: v}) {
			h.items[0] = heapItem{idx: i, val: v}
			heap.Fix(h, 0)
		}
	}
	out := make([]int, len(h.items))
	for i := len(h.items) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(heapItem).idx
	}
	return out
}

// AboveThreshold returns, in ascending index order, all indices i
// with x[i] >= threshold. This models the Screener's threshold
// filter.
func AboveThreshold(x []float32, threshold float32) []int {
	var out []int
	for i, v := range x {
		if v >= threshold {
			out = append(out, i)
		}
	}
	return out
}

type heapItem struct {
	idx int
	val float32
}

// less orders items so that the heap root is the *worst* retained
// candidate: smaller value first, and on equal values the larger
// index first so that ties break toward lower indices overall.
func less(a, b heapItem) bool {
	if a.val != b.val {
		return a.val < b.val
	}
	return a.idx > b.idx
}

type minHeap struct{ items []heapItem }

func (h *minHeap) Len() int           { return len(h.items) }
func (h *minHeap) Less(i, j int) bool { return less(h.items[i], h.items[j]) }
func (h *minHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *minHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *minHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
