package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"enmc/internal/xrand"
)

func TestMatVec(t *testing.T) {
	m := FromRows([][]float32{
		{1, 2, 3},
		{4, 5, 6},
	})
	x := []float32{1, 0, -1}
	dst := make([]float32, 2)
	m.MatVec(dst, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MatVec = %v, want [-2 -2]", dst)
	}
}

func TestMatVecShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	m := NewMatrix(2, 3)
	m.MatVec(make([]float32, 2), make([]float32, 2))
}

func TestMatVecRowsMatchesFull(t *testing.T) {
	r := xrand.New(1)
	m := randMatrix(r, 20, 8)
	x := randVec(r, 8)
	full := make([]float32, 20)
	m.MatVec(full, x)
	rows := []int{3, 0, 19, 7}
	sub := make([]float32, len(rows))
	m.MatVecRows(sub, rows, x)
	for j, ri := range rows {
		if sub[j] != full[ri] {
			t.Fatalf("row %d: got %v want %v", ri, sub[j], full[ri])
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := xrand.New(2)
	a := randMatrix(r, 5, 5)
	id := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	got := MatMul(a, id)
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatal("A·I != A")
		}
	}
}

func TestMatMulAgainstMatVec(t *testing.T) {
	r := xrand.New(3)
	a := randMatrix(r, 7, 4)
	b := randMatrix(r, 4, 1)
	prod := MatMul(a, b)
	want := make([]float32, 7)
	a.MatVec(want, b.Data)
	for i := 0; i < 7; i++ {
		if math.Abs(float64(prod.At(i, 0)-want[i])) > 1e-5 {
			t.Fatalf("MatMul vs MatVec mismatch at %d", i)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	tt := m.T()
	if tt.Rows != 2 || tt.Cols != 3 {
		t.Fatalf("T shape %dx%d", tt.Rows, tt.Cols)
	}
	if tt.At(0, 2) != 5 || tt.At(1, 0) != 2 {
		t.Fatal("transpose values wrong")
	}
	back := tt.T()
	for i := range m.Data {
		if back.Data[i] != m.Data[i] {
			t.Fatal("double transpose not identity")
		}
	}
}

func TestDotMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(64)
		a, b := randVec(r, n), randVec(r, n)
		var want float64
		for i := range a {
			want += float64(a[i]) * float64(b[i])
		}
		return math.Abs(float64(Dot(a, b))-want) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAxpyScaleAddSub(t *testing.T) {
	dst := []float32{1, 2, 3}
	Axpy(dst, 2, []float32{1, 1, 1})
	if dst[0] != 3 || dst[2] != 5 {
		t.Fatalf("Axpy = %v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 1.5 {
		t.Fatalf("Scale = %v", dst)
	}
	out := make([]float32, 3)
	Add(out, []float32{1, 2, 3}, []float32{4, 5, 6})
	if out[1] != 7 {
		t.Fatalf("Add = %v", out)
	}
	Sub(out, []float32{1, 2, 3}, []float32{4, 5, 6})
	if out[1] != -3 {
		t.Fatalf("Sub = %v", out)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float32{1, 5, 5, 2}) != 1 {
		t.Fatal("ArgMax tie should break low")
	}
	if ArgMax([]float32{-3, -1, -2}) != 1 {
		t.Fatal("ArgMax negative values")
	}
}

func TestNorm2AndMaxAbs(t *testing.T) {
	if Norm2([]float32{3, 4}) != 5 {
		t.Fatal("Norm2(3,4) != 5")
	}
	if MaxAbs([]float32{-7, 3}) != 7 {
		t.Fatal("MaxAbs")
	}
	if MaxAbs(nil) != 0 {
		t.Fatal("MaxAbs(nil)")
	}
}

func TestMSE(t *testing.T) {
	got := MSE([]float32{1, 2}, []float32{2, 4})
	if math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("MSE = %v, want 2.5", got)
	}
	if MSE(nil, nil) != 0 {
		t.Fatal("MSE empty")
	}
}

func TestTopKBasic(t *testing.T) {
	x := []float32{0.1, 9, 3, 7, 7, -2}
	got := TopK(x, 3)
	want := []int{1, 3, 4}
	if len(got) != 3 {
		t.Fatalf("TopK len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if TopK(nil, 3) != nil {
		t.Fatal("TopK(nil)")
	}
	if TopK([]float32{1, 2}, 0) != nil {
		t.Fatal("TopK k=0")
	}
	got := TopK([]float32{1, 2}, 10)
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("TopK overflow k: %v", got)
	}
}

func TestTopKMatchesSort(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(200)
		k := 1 + r.Intn(n)
		x := randVec(r, n)
		got := TopK(x, k)
		if len(got) != k {
			return false
		}
		// Every returned value must be >= every non-returned value.
		in := make(map[int]bool, k)
		var minIn float32 = math.MaxFloat32
		for _, i := range got {
			in[i] = true
			if x[i] < minIn {
				minIn = x[i]
			}
		}
		for i, v := range x {
			if !in[i] && v > minIn {
				return false
			}
		}
		// Descending order.
		for j := 1; j < k; j++ {
			if x[got[j]] > x[got[j-1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAboveThreshold(t *testing.T) {
	got := AboveThreshold([]float32{1, 5, 2, 5}, 5)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("AboveThreshold = %v", got)
	}
	if AboveThreshold(nil, 0) != nil {
		t.Fatal("AboveThreshold(nil)")
	}
}

func randMatrix(r *xrand.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat32()
	}
	return m
}

func randVec(r *xrand.RNG, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = r.NormFloat32()
	}
	return v
}
