// Package tensor implements the dense float32 linear-algebra
// substrate used by the ENMC reproduction: matrices in row-major
// layout, matrix-vector and matrix-matrix products, and the vector
// helpers the screening algorithm and its baselines are built on.
//
// The package is deliberately simple — classification inference is a
// streaming GEMV, so clarity and predictable memory traffic matter
// more than blocked micro-kernels. All operations are deterministic.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns row i as a slice sharing the matrix's storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Bytes reports the storage footprint of the matrix payload.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 4 }

// MatVec computes dst = m·x. dst must have length m.Rows and x length
// m.Cols. It panics on shape mismatch.
func (m *Matrix) MatVec(dst, x []float32) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec shapes %dx%d · %d -> %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// MatVecRows computes dst[j] = m.Row(rows[j])·x for a candidate
// subset, which is exactly the candidates-only classification kernel.
func (m *Matrix) MatVecRows(dst []float32, rows []int, x []float32) {
	if len(dst) != len(rows) {
		panic("tensor: MatVecRows length mismatch")
	}
	for j, r := range rows {
		dst[j] = Dot(m.Row(r), x)
	}
}

// MatMul returns a·b. Shapes must agree (a.Cols == b.Rows).
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shapes %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out
}

// Dot returns the inner product of a and b (equal lengths required).
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes dst += alpha*x.
func Axpy(dst []float32, alpha float32, x []float32) {
	if len(dst) != len(x) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(x []float32, alpha float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes dst = a + b element-wise.
func Add(dst, a, b []float32) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b element-wise.
func Sub(dst, a, b []float32) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Norm2 returns the Euclidean norm of x, accumulating in float64 for
// stability on long vectors.
func Norm2(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute value in x (0 for empty x).
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the maximum element; ties break low.
// It panics on an empty slice.
func ArgMax(x []float32) int {
	if len(x) == 0 {
		panic("tensor: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// MSE returns the mean squared error between a and b in float64.
func MSE(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: MSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s / float64(len(a))
}
