# Standard-library-only Go project; no tool dependencies beyond the
# toolchain itself.

GO ?= go

.PHONY: all build test race bench bench-smoke bench-perf wire-bench decode-bench decode-bleu decode-smoke vet fmt check ci cover clean swap-smoke cluster-smoke metrics-smoke qos-smoke train-checkpoint report report-check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full race-enabled test run. Slower than `make test`; this is what
# `make check` gates on.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 100x -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Pre-commit gate: vet, formatting, and the race-enabled test suite.
check: vet fmt race
	@echo "check OK"

# What CI runs on every push/PR — the same gate as `make check` plus
# an explicit build and plain test pass and the stale-report gate,
# kept here so the CI workflow can't drift from the Makefile.
ci: vet fmt build test race report-check
	@echo "ci OK"

# One-iteration benchmark pass: compiles and runs every benchmark
# once so perf regressions are at least visible per-PR (CI uploads
# bench-smoke.txt as an artifact).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | tee bench-smoke.txt

# Hot-path perf harness at the paper's serving shapes. Appends a
# dated, labeled PerfRecord to BENCH_FILE — by default the committed
# trajectory itself, so every run extends the number series the
# report is built from — and fails on a >MAXREG slowdown of
# screen/classify vs the last committed record: a generous
# cross-machine tripwire for lost fast paths, not a microbenchmark
# gate. PERF_SHAPES narrows the run (CI uses the small shape only);
# CI overrides BENCH_FILE so runner records never enter the committed
# trajectory. After a local run: `make report` and commit both files.
BENCH_BASELINE ?= $(firstword $(wildcard BENCH_*.json))
BENCH_FILE ?= $(if $(BENCH_BASELINE),$(BENCH_BASELINE),BENCH_$(shell date -u +%Y-%m-%d).json)
MAXREG ?= 1.75
PERF_SHAPES ?=
bench-perf:
	$(GO) run ./cmd/enmc-bench -perf -shapes '$(PERF_SHAPES)' \
		-label "bench-perf $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)" \
		-json $(BENCH_FILE) $(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE) -maxreg $(MAXREG))

# Wire-codec harness: the cluster screen RPC in both codecs — binary
# frame (protocol v2) vs the JSON fallback — appended to the same
# governed trajectory (schema 1, interleaved passes, CV disclosure),
# so the binary-vs-JSON speedup and byte savings enter BENCHMARK.md
# through the validity gate rather than as prose claims. The speedup
# columns are computed within each record, so they stay meaningful
# even across machine changes. After a local run: `make report`.
wire-bench:
	$(GO) run ./cmd/enmc-bench -wire \
		-label "wire-bench $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)" \
		-json $(BENCH_FILE) $(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE) -maxreg $(MAXREG))

# Streaming-decode harness: one screened autoregressive decode step
# with the cross-step candidate cache off and on, plus the quality
# triplet behind it (cache hit rate, windowed survivor overlap,
# screened-vs-full agreement BLEU), appended to the same governed
# trajectory. The BLEU floor rides along so a committed record can
# never claim a decode speedup from a screener that stopped agreeing
# with full decoding. After a local run: `make report`.
DECODE_BLEU_FLOOR ?= 0.50
decode-bench:
	$(GO) run ./cmd/enmc-bench -decode \
		-label "decode-bench $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)" \
		-json $(BENCH_FILE) $(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE) -maxreg $(MAXREG)) \
		-bleu-floor $(DECODE_BLEU_FLOOR)

# Fast agreement gate only (no trajectory append): decode the probe
# corpus screened and full, fail if corpus BLEU drops below the
# committed floor. This is what CI runs per-PR — it catches screener
# or decoder changes that silently break per-token screening quality.
decode-bleu:
	$(GO) run ./cmd/enmc-bench -decode -passes 1 -label decode-bleu \
		-bleu-floor $(DECODE_BLEU_FLOOR)

# Benchmark governance (see BENCHMARKING.md): regenerate the committed
# BENCHMARK.md from the measurement corpus — the BENCH_*.json
# trajectory plus the loadgen JSON reports under benchdata/loadgen —
# after the validity gate admits it. report-check is the CI stale gate:
# it fails when the committed report differs from a fresh rendering or
# when the gate rejects the corpus.
report:
	$(GO) run ./cmd/enmc-report -out BENCHMARK.md

report-check:
	$(GO) run ./cmd/enmc-report -out BENCHMARK.md -check

# Coverage gate over the tier-1 packages. CI passes COVER_FLOOR so
# the recorded baseline lives in .github/workflows/ci.yml; locally
# the default floor of 0 just prints the total.
COVER_FLOOR ?= 0
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }'

# Hot-swap smoke: serve a registry version under sustained loadgen
# traffic while triggering two reloads — one passing the canary gate,
# one failing it (plus a corrupted-artifact reload) — and fail on any
# non-200 caused by the swaps. The end-to-end proof of the
# zero-downtime model lifecycle (internal/registry + Swappable).
swap-smoke:
	bash scripts/swap_smoke.sh

# Cluster smoke: 3 enmc-shard workers x 2 replicas behind the
# enmc-serve scatter-gather router under loadgen. SIGKILLs one
# replica (traffic must stay clean and non-partial), then both
# replicas of one shard (responses must degrade to partial:true with
# that shard listed, never non-200), then restarts them (full merges
# must resume). The end-to-end proof of the networked serving
# topology (internal/cluster + cmd/enmc-shard).
cluster-smoke:
	bash scripts/cluster_smoke.sh

# Decode smoke: streaming /v1/decode end-to-end. Phase 1 drives
# greedy and beam sessions (NDJSON and SSE) against a single-node
# server under loadgen with zero tolerance for errors or cut streams.
# Phase 2 rebuilds the 3x2 cluster topology with -decode on the
# router, SIGKILLs a replica mid-session, and asserts every in-flight
# stream survived (failover re-pins, cluster_session_repin > 0 on
# /metrics, zero dropped streams).
decode-smoke:
	bash scripts/decode_smoke.sh

# Observability smoke: the same 3x2 cluster with tracing and JSON
# request logs on, under loadgen. Scrapes /metrics on the router and
# every shard replica and lints the exposition with enmc-promlint
# (the telemetry package's own parser), asserts the shard-RPC counter
# and request histograms advanced, that every response echoed
# X-Request-Id, and that /debug/spans holds one propagated trace with
# spans from >= 2 processes.
metrics-smoke:
	bash scripts/metrics_smoke.sh

# Multi-tenant QoS smoke: one server, an interactive tenant and a
# saturating batch tenant driven concurrently. Asserts the batch
# class absorbs >= 95% of shed/degrade/throttle pressure (per-tenant
# labeled counters on /metrics) while the interactive tenant sees
# zero 429/5xx and a bounded p99; flips a quota via SIGHUP
# tenant-config reload mid-load with zero dropped in-flight requests;
# and proves two model versions (active + tenant-pinned) serve from
# one process. The end-to-end proof of internal/tenant + the
# weighted-fair batcher.
qos-smoke:
	bash scripts/qos_smoke.sh

# Checkpoint/resume demo: interrupt a registry training run
# (-stop-after), resume it from the checkpoint, and verify the
# version publishes atomically with the checkpoint cleaned up.
train-checkpoint:
	bash scripts/train_checkpoint_demo.sh

clean:
	$(GO) clean ./...
