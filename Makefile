# Standard-library-only Go project; no tool dependencies beyond the
# toolchain itself.

GO ?= go

.PHONY: all build test race bench bench-smoke vet fmt check ci cover clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full race-enabled test run. Slower than `make test`; this is what
# `make check` gates on.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 100x -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Pre-commit gate: vet, formatting, and the race-enabled test suite.
check: vet fmt race
	@echo "check OK"

# What CI runs on every push/PR — the same gate as `make check` plus
# an explicit build and plain test pass, kept here so the CI workflow
# can't drift from the Makefile.
ci: vet fmt build test race
	@echo "ci OK"

# One-iteration benchmark pass: compiles and runs every benchmark
# once so perf regressions are at least visible per-PR (CI uploads
# bench-smoke.txt as an artifact).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | tee bench-smoke.txt

# Coverage gate over the tier-1 packages. CI passes COVER_FLOOR so
# the recorded baseline lives in .github/workflows/ci.yml; locally
# the default floor of 0 just prints the total.
COVER_FLOOR ?= 0
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }'

clean:
	$(GO) clean ./...
