# Standard-library-only Go project; no tool dependencies beyond the
# toolchain itself.

GO ?= go

.PHONY: all build test race bench vet fmt check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full race-enabled test run. Slower than `make test`; this is what
# `make check` gates on.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 100x -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Pre-commit gate: vet, formatting, and the race-enabled test suite.
check: vet fmt race
	@echo "check OK"

clean:
	$(GO) clean ./...
