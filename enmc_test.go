package enmc

import (
	"bytes"
	"strings"
	"testing"

	"enmc/internal/workload"
)

// publicModel builds a small synthetic model through the public API
// only (weights come from the internal generator, converted to plain
// slices at the boundary).
func publicModel(t testing.TB, l, d int) (*Classifier, [][]float32) {
	t.Helper()
	spec := workload.Spec{Name: "api", Categories: l, Hidden: d, LatentRank: 16, ZipfS: 1}
	inst := workload.Generate(spec, workload.GenOptions{Seed: 11, Train: 96, Valid: 16, Test: 32})
	rows := make([][]float32, l)
	for i := 0; i < l; i++ {
		rows[i] = inst.Classifier.W.Row(i)
	}
	cls, err := NewClassifier(rows, inst.Classifier.B)
	if err != nil {
		t.Fatal(err)
	}
	return cls, append(inst.Train, inst.Test...)
}

func TestNewClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(nil, nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewClassifier([][]float32{{1, 2}}, []float32{1, 2}); err == nil {
		t.Fatal("bias mismatch accepted")
	}
}

func TestEndToEndClassification(t *testing.T) {
	cls, samples := publicModel(t, 256, 64)
	if cls.Categories() != 256 || cls.Hidden() != 64 {
		t.Fatal("shape accessors")
	}
	scr, err := TrainScreener(cls, samples[:96], ScreenerConfig{Seed: 3, Epochs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if scr.WeightBytes() >= cls.WeightBytes() {
		t.Fatal("screener not smaller than classifier")
	}
	hits := 0
	test := samples[96:]
	for _, h := range test {
		res := Classify(cls, scr, h, TopM(16))
		if len(res.Candidates) != 16 {
			t.Fatalf("candidates = %d", len(res.Candidates))
		}
		if res.Predict() == cls.Predict(h) {
			hits++
		}
	}
	if hits < len(test)*8/10 {
		t.Fatalf("top-1 agreement %d/%d too low", hits, len(test))
	}
}

func TestResultHelpers(t *testing.T) {
	cls, samples := publicModel(t, 128, 32)
	scr, err := TrainScreener(cls, samples[:64], ScreenerConfig{Seed: 5, Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	res := Classify(cls, scr, samples[0], TopM(8))
	top := res.TopK(3)
	if len(top) != 3 || top[0] != res.Predict() {
		t.Fatalf("TopK inconsistent with Predict: %v vs %d", top, res.Predict())
	}
	p := res.Probabilities()
	var sum float64
	for _, v := range p {
		sum += float64(v)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum %v", sum)
	}
}

func TestThresholdSelection(t *testing.T) {
	cls, samples := publicModel(t, 200, 32)
	scr, err := TrainScreener(cls, samples[:64], ScreenerConfig{Seed: 7, Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	th := CalibrateThreshold(scr, samples[64:96], 12)
	var total int
	for _, h := range samples[96:] {
		total += len(Classify(cls, scr, h, Threshold(th)).Candidates)
	}
	avg := float64(total) / float64(len(samples[96:]))
	if avg < 3 || avg > 48 {
		t.Fatalf("calibrated threshold yields %.1f candidates on average, want ≈ 12", avg)
	}
}

func TestClassifyBatchPublic(t *testing.T) {
	cls, samples := publicModel(t, 100, 32)
	scr, err := TrainScreener(cls, samples[:64], ScreenerConfig{Seed: 9, Epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	out := ClassifyBatch(cls, scr, samples[:5], TopM(4))
	if len(out) != 5 {
		t.Fatal("batch size")
	}
}

func TestSimulatePublic(t *testing.T) {
	task := SimTask{Categories: 262144, Hidden: 512}
	en, err := Simulate("enmc", task)
	if err != nil {
		t.Fatal(err)
	}
	if en.Seconds <= 0 || en.TotalJoules() <= 0 {
		t.Fatalf("empty result %+v", en)
	}
	td, err := Simulate("tensordimm", SimTask{Categories: 262144, Hidden: 512, FullClassification: true})
	if err != nil {
		t.Fatal(err)
	}
	if td.Seconds <= en.Seconds {
		t.Fatal("full classification on TensorDIMM should be slower than screened ENMC")
	}
	if _, err := Simulate("warp-drive", task); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestAssembleAndRunProgram(t *testing.T) {
	src := `
# minimal screening tile
INIT reg_5, 1024
LDR feat_i4, 0x0
LDR wgt_i4, 0x1000
MUL_ADD_INT4 feat_i4, wgt_i4
FILTER psum_i4
BARRIER
RETURN
`
	p, err := AssembleProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 7 {
		t.Fatalf("program length %d", p.Len())
	}
	if !strings.Contains(p.Disassemble(), "MUL_ADD_INT4") {
		t.Fatal("disassembly lost mnemonics")
	}
	res, err := p.RunOnDIMM()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Instructions != 7 || res.INT4MACs != 512 {
		t.Fatalf("unexpected run result %+v", res)
	}
	if _, err := AssembleProgram("BOGUS x"); err == nil {
		t.Fatal("bad assembly accepted")
	}
}

func TestRunExperimentPublic(t *testing.T) {
	out, err := RunExperiment("table4", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "TensorDIMM") || !strings.Contains(out, "ENMC") {
		t.Fatalf("table4 output malformed:\n%s", out)
	}
	if _, err := RunExperiment("fig99", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	names := ExperimentNames()
	if len(names) != 17 {
		t.Fatalf("experiment count = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}

func TestPublicSaveLoad(t *testing.T) {
	cls, samples := publicModel(t, 96, 32)
	scr, err := TrainScreener(cls, samples[:64], ScreenerConfig{Seed: 2, Epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sbuf, cbuf bytes.Buffer
	if err := SaveScreener(scr, &sbuf); err != nil {
		t.Fatal(err)
	}
	if err := SaveClassifier(cls, &cbuf); err != nil {
		t.Fatal(err)
	}
	scr2, err := LoadScreener(&sbuf)
	if err != nil {
		t.Fatal(err)
	}
	cls2, err := LoadClassifier(&cbuf)
	if err != nil {
		t.Fatal(err)
	}
	h := samples[0]
	a := Classify(cls, scr, h, TopM(5))
	b := Classify(cls2, scr2, h, TopM(5))
	for i := range a.Logits {
		if a.Logits[i] != b.Logits[i] {
			t.Fatal("restored model diverged")
		}
	}
}

func TestPublicLogitsAndScreen(t *testing.T) {
	cls, samples := publicModel(t, 80, 32)
	scr, err := TrainScreener(cls, samples[:48], ScreenerConfig{Seed: 4, Epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := samples[0]
	z := cls.Logits(h)
	if len(z) != 80 {
		t.Fatalf("logits length %d", len(z))
	}
	zt := scr.Screen(h)
	if len(zt) != 80 {
		t.Fatalf("screen length %d", len(zt))
	}
	// The screened argmax should usually agree; at minimum the exact
	// argmax must appear in the screened top quarter.
	top := TopM(20)
	res := Classify(cls, scr, h, top)
	found := false
	for _, c := range res.Candidates {
		if c == cls.Predict(h) {
			found = true
		}
	}
	if !found {
		t.Fatal("exact top-1 not among 25% screened candidates")
	}
}

func TestProgramTrace(t *testing.T) {
	p, err := AssembleProgram("LDR wgt_i4, 0x0\nMUL_ADD_INT4 feat_i4, wgt_i4\nRETURN\n")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p.SetTrace(&buf)
	if _, err := p.RunOnDIMM(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("trace lines = %d", got)
	}
}
