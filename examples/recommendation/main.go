// Recommendation: Amazon-style multi-label top-k retrieval over a
// large item catalogue with threshold-filtered screening, plus a
// cycle-level comparison of running the same workload on the ENMC
// DIMM versus the baseline NMP designs and conventional full
// classification — the paper's recommendation story (Fig. 11(d),
// Fig. 13, Fig. 15).
//
//	go run ./examples/recommendation
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"enmc"
)

const (
	items  = 30000 // catalogue size (scaled-down Amazon-670K)
	hidden = 128
	latent = 32
	topK   = 5
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// Item embedding matrix with latent structure.
	a := randMatrix(rng, items, latent, 1)
	basis := randMatrix(rng, latent, hidden, 1/math.Sqrt(latent))
	weights := matmul(a, basis)
	cls, err := enmc.NewClassifier(weights, make([]float32, items))
	if err != nil {
		log.Fatal(err)
	}

	// User feature vectors.
	users := make([][]float32, 400)
	for i := range users {
		users[i] = userVector(rng, weights, basis, rng.Intn(items))
	}
	train, valid, test := users[:280], users[280:320], users[320:]

	scr, err := enmc.TrainScreener(cls, train, enmc.ScreenerConfig{Seed: 4, Epochs: 10})
	if err != nil {
		log.Fatal(err)
	}

	// Hardware-style threshold selection, calibrated for ≈300
	// candidates (a 100× reduction).
	const target = 300
	th := enmc.CalibrateThreshold(scr, valid, target)
	fmt.Printf("catalogue %d items; calibrated threshold %.2f for ≈%d candidates\n\n", items, th, target)

	// Precision@k of screened retrieval against exact retrieval.
	var p5 float64
	var avgCands float64
	for _, u := range test {
		res := enmc.Classify(cls, scr, u, enmc.Threshold(th))
		avgCands += float64(len(res.Candidates))
		exactTop := topIndices(cls.Logits(u), topK)
		hits := 0
		for _, it := range res.TopK(topK) {
			for _, e := range exactTop {
				if it == e {
					hits++
					break
				}
			}
		}
		p5 += float64(hits) / topK
	}
	n := float64(len(test))
	fmt.Printf("screened retrieval: P@%d = %.3f with %.0f candidates/query on average\n\n",
		topK, p5/n, avgCands/n)

	// Architecture comparison on the full-size workload (670K items,
	// Table 2 shape): cycle-level system simulation per design.
	fmt.Println("cycle-level simulation, 670091 items × 512 dims, batch 4 (8 ch × 8 ranks):")
	fmt.Printf("%-18s %-12s %-12s %s\n", "design", "time (us)", "energy (mJ)", "vs ENMC")
	task := enmc.SimTask{Categories: 670091, Hidden: 512, Batch: 4, Sigmoid: true}
	base, err := enmc.Simulate("enmc", task)
	if err != nil {
		log.Fatal(err)
	}
	for _, design := range []string{"enmc", "tensordimm", "nda", "chameleon"} {
		r, err := enmc.Simulate(design, task)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %-12.1f %-12.2f %.2fx\n",
			r.Design, r.Seconds*1e6, r.TotalJoules()*1e3, r.Seconds/base.Seconds)
	}
	full := task
	full.FullClassification = true
	r, err := enmc.Simulate("tensordimm", full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %-12.1f %-12.2f %.2fx   (no screening)\n",
		"TensorDIMM-full", r.Seconds*1e6, r.TotalJoules()*1e3, r.Seconds/base.Seconds)
}

func topIndices(z []float32, k int) []int {
	idx := make([]int, 0, k)
	for n := 0; n < k; n++ {
		best := -1
		for i, v := range z {
			taken := false
			for _, j := range idx {
				if i == j {
					taken = true
					break
				}
			}
			if !taken && (best < 0 || v > z[best]) {
				best = i
			}
		}
		idx = append(idx, best)
	}
	return idx
}

func userVector(rng *rand.Rand, weights, basis [][]float32, liked int) []float32 {
	h := make([]float32, hidden)
	row := weights[liked]
	var norm float64
	for _, v := range row {
		norm += float64(v) * float64(v)
	}
	scale := 3.3 / float32(math.Sqrt(norm))
	for j := range h {
		h[j] = scale * row[j]
	}
	for k := range basis {
		coef := float32(rng.NormFloat64() * 0.3)
		for j := range h {
			h[j] += coef * basis[k][j]
		}
	}
	return h
}

func randMatrix(rng *rand.Rand, rows, cols int, scale float64) [][]float32 {
	m := make([][]float32, rows)
	for i := range m {
		m[i] = make([]float32, cols)
		for j := range m[i] {
			m[i][j] = float32(rng.NormFloat64() * scale)
		}
	}
	return m
}

func matmul(a, b [][]float32) [][]float32 {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := make([][]float32, rows)
	for i := range out {
		out[i] = make([]float32, cols)
		for k := 0; k < inner; k++ {
			aik := a[i][k]
			for j := 0; j < cols; j++ {
				out[i][j] += aik * b[k][j]
			}
		}
	}
	return out
}
