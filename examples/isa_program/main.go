// ISA program: write an ENMC program by hand in the Table 1
// assembly, run it on a single simulated ENMC rank (the Fig. 7
// micro-architecture), and inspect the timing and activity — what a
// driver developer would do to bring up the DIMM.
//
//	go run ./examples/isa_program
package main

import (
	"fmt"
	"log"

	"enmc"
)

// A screening micro-kernel over 16 weight tiles: initialize the
// status registers, load the quantized feature once, stream weight
// tiles through the INT4 MAC array, filter candidates, then run one
// candidate tile on the FP32 executor and return the output buffer.
const source = `
# ---- initialization (writes the controller's status registers) ----
INIT reg_5, 1024        # vocabulary rows handled by this rank
INIT reg_6, 512         # hidden dimension
INIT reg_7, 128         # reduced dimension
INIT reg_8, 0x41f00000  # candidate threshold (float bits)

# ---- screening phase: INT4 stream through the Screener ----
LDR feat_i4, 0x10000    # quantized projected feature

LDR wgt_i4, 0x0
MUL_ADD_INT4 feat_i4, wgt_i4
LDR wgt_i4, 0x100
MUL_ADD_INT4 feat_i4, wgt_i4
LDR wgt_i4, 0x200
MUL_ADD_INT4 feat_i4, wgt_i4
LDR wgt_i4, 0x300
MUL_ADD_INT4 feat_i4, wgt_i4
LDR wgt_i4, 0x400
MUL_ADD_INT4 feat_i4, wgt_i4
LDR wgt_i4, 0x500
MUL_ADD_INT4 feat_i4, wgt_i4
LDR wgt_i4, 0x600
MUL_ADD_INT4 feat_i4, wgt_i4
LDR wgt_i4, 0x700
MUL_ADD_INT4 feat_i4, wgt_i4
FILTER psum_i4          # comparator array writes candidate indices

# ---- candidate phase: FP32 executor ----
BARRIER                 # wait for the screening results
LDR feat_f32, 0x12000   # full-precision feature chunk
LDR wgt_f32, 0x20000    # candidate weight row chunk
MUL_ADD_FP32 feat_f32, wgt_f32
LDR wgt_f32, 0x20800
MUL_ADD_FP32 feat_f32, wgt_f32
SOFTMAX                 # special-function unit
MOVE out, psum_f32
RETURN                  # ship the output buffer to the host
QUERY reg_10            # host polls the candidate counter
CLR
`

func main() {
	prog, err := enmc.AssembleProgram(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d instructions; disassembly round-trip:\n\n", prog.Len())
	fmt.Println(prog.Disassemble())

	res, err := prog.RunOnDIMM()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("execution on one ENMC rank (Table 3 configuration):")
	fmt.Printf("  cycles (DDR4-2400 clock):   %d (%.2f µs)\n", res.Cycles, res.Seconds*1e6)
	fmt.Printf("  instructions retired:       %d\n", res.Instructions)
	fmt.Printf("  INT4 MAC operations:        %d\n", res.INT4MACs)
	fmt.Printf("  FP32 MAC operations:        %d\n", res.FP32MACs)
	fmt.Printf("  DRAM bursts (read/write):   %d / %d\n", res.DRAMReads, res.DRAMWrites)
	fmt.Printf("  DRAM row-buffer hit rate:   %.1f%%\n", 100*res.RowHitRate)
}
