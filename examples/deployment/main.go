// Deployment: the full production flow end to end — train a screener,
// serialize it, restore it on an "inference host", build the DRAM
// image a rank would hold, and verify with the functional DIMM
// machine that the compiled instruction stream computes exactly what
// the software classifier computes (the Fig. 10 initialization story
// plus this repo's correctness bridge).
//
//	go run ./examples/deployment
//
// This example reaches below the public facade into the internal
// packages on purpose: it demonstrates how the layers of the
// simulator fit together.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"enmc/internal/compiler"
	"enmc/internal/core"
	"enmc/internal/enmc"
	"enmc/internal/funcsim"
	"enmc/internal/image"
	"enmc/internal/isa"
	"enmc/internal/quant"
	"enmc/internal/tensor"
	"enmc/internal/workload"
)

func main() {
	// 1. Train on the "training host".
	spec := workload.Spec{Name: "deploy", Categories: 1024, Hidden: 128, LatentRank: 32, ZipfS: 1.05}
	inst := workload.Generate(spec, workload.GenOptions{Seed: 3, Train: 512, Valid: 32, Test: 8})
	cfg := core.Config{Categories: 1024, Hidden: 128, Reduced: 32, Precision: quant.INT4, Seed: 9}
	scr, stats, err := core.TrainScreener(inst.Classifier, inst.Train, cfg, core.TrainOptions{Epochs: 10, Seed: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained screener: final MSE %.3g, %0.1f%% of classifier size\n",
		stats.EpochLoss[len(stats.EpochLoss)-1],
		100*float64(scr.WeightBytes())/float64(inst.Classifier.WeightBytes()))

	// 2. Ship it: serialize + restore (in-memory here; a file in
	//    production).
	var wire bytes.Buffer
	if _, err := scr.WriteTo(&wire); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized screener: %d bytes on the wire\n", wire.Len())
	restored, err := core.ReadScreener(&wire)
	if err != nil {
		log.Fatal(err)
	}

	// 3. On the inference host: build the DRAM image one rank holds
	//    (packed INT4 weights, scales, bias, features).
	query := inst.Test[0]
	img, qh, err := image.BuildFull(inst.Classifier, restored, 0, 1024, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank DRAM image: %.1f KB\n", float64(img.Bytes())/1024)

	// 4. Compile the offload and pick a threshold admitting ~24
	//    candidates.
	soft := restored.Screen(query)
	th := soft[tensor.TopK(soft, 24)[23]]
	task := compiler.Task{Categories: 1024, Hidden: 128, Reduced: 32, Candidates: 24, Batch: 1}
	prog, err := compiler.Compile(task, enmc.Default(), compiler.ENMCTarget(),
		compiler.RankShare{Rows: 1024, Candidates: 24}, compiler.ModeScreened)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled program: %d instructions\n", len(prog.Ops))

	// 5a. Timing: run the stream on the cycle-level engine.
	eng, err := enmc.New(enmc.Default())
	if err != nil {
		log.Fatal(err)
	}
	timing, err := eng.Run(prog.Ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle engine: %d DRAM cycles (%.2f µs), row-hit rate %.0f%%\n",
		timing.Cycles, timing.Seconds*1e6, 100*timing.Stats.DRAM.HitRate())

	// 5b. Function: run the same stream on the functional machine and
	//     verify bit-exactness against the software screener.
	m := funcsim.New(enmc.Default(), img)
	pre := []enmc.Op{
		{I: isa.Init(isa.RegThreshold, uint64(math.Float32bits(th)))},
		{I: isa.Init(isa.RegFeatSize, uint64(math.Float32bits(qh.Scale)))},
	}
	if err := m.Run(append(append(pre, prog.Init...), prog.Ops...)); err != nil {
		log.Fatal(err)
	}
	mismatches := 0
	for i := range soft {
		if m.Z[i] != soft[i] {
			mismatches++
		}
	}
	fmt.Printf("functional machine: %d/%d outputs bit-exact vs software, %d candidates filtered\n",
		len(soft)-mismatches, len(soft), len(m.Candidates))
	if mismatches > 0 {
		log.Fatal("deployment verification FAILED")
	}
	fmt.Println("deployment verified: compiled stream ≡ software screener")
}
