// Quickstart: train an approximate screener for a synthetic extreme
// classifier and compare screened classification against the exact
// layer — the paper's Section 4 pipeline end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"enmc"
)

const (
	categories = 4000 // l: number of classes
	hidden     = 128  // d: hidden dimension
	latent     = 24   // synthetic latent rank (hidden states live here)
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A synthetic "trained" classifier: W = A·B so logits concentrate
	// on few classes, the structure real extreme classifiers have.
	a := randMatrix(rng, categories, latent, 1)
	basis := randMatrix(rng, latent, hidden, 1/math.Sqrt(latent))
	weights := matmul(a, basis)
	bias := make([]float32, categories)

	cls, err := enmc.NewClassifier(weights, bias)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classifier: %d classes × %d dims = %.1f MB of weights\n",
		cls.Categories(), cls.Hidden(), float64(cls.WeightBytes())/(1<<20))

	// Hidden-state samples: peaked toward a class plus in-manifold
	// noise (what a trained front-end produces).
	samples := make([][]float32, 600)
	labels := make([]int, len(samples))
	for i := range samples {
		labels[i] = rng.Intn(categories)
		samples[i] = hiddenState(rng, weights, basis, labels[i])
	}
	train, test := samples[:500], samples[500:]

	// Algorithm 1: distill the screener (defaults: k = d/4, INT4).
	scr, err := enmc.TrainScreener(cls, train, enmc.ScreenerConfig{Seed: 1, Epochs: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("screener:   %.2f MB (%.1f%% of the classifier)\n\n",
		float64(scr.WeightBytes())/(1<<20),
		100*float64(scr.WeightBytes())/float64(cls.WeightBytes()))

	// Classify with a 2% candidate budget and compare to exact.
	budget := categories / 50
	agree := 0
	for _, h := range test {
		res := enmc.Classify(cls, scr, h, enmc.TopM(budget))
		if res.Predict() == cls.Predict(h) {
			agree++
		}
	}
	fmt.Printf("candidate budget: %d of %d classes (%.0f× fewer exact dot products)\n",
		budget, categories, float64(categories)/float64(budget))
	fmt.Printf("top-1 agreement with exact classification: %d/%d\n\n", agree, len(test))

	// One query in detail.
	res := enmc.Classify(cls, scr, test[0], enmc.TopM(budget))
	fmt.Printf("query 0: predicted class %d, top-5 = %v\n", res.Predict(), res.TopK(5))
	fmt.Printf("         exact top class  %d\n", cls.Predict(test[0]))
	p := res.Probabilities()
	fmt.Printf("         probability of prediction: %.3f\n", p[res.Predict()])
}

func randMatrix(rng *rand.Rand, rows, cols int, scale float64) [][]float32 {
	m := make([][]float32, rows)
	for i := range m {
		m[i] = make([]float32, cols)
		for j := range m[i] {
			m[i][j] = float32(rng.NormFloat64() * scale)
		}
	}
	return m
}

func matmul(a, b [][]float32) [][]float32 {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := make([][]float32, rows)
	for i := range out {
		out[i] = make([]float32, cols)
		for k := 0; k < inner; k++ {
			aik := a[i][k]
			for j := 0; j < cols; j++ {
				out[i][j] += aik * b[k][j]
			}
		}
	}
	return out
}

// hiddenState draws a state peaked toward class c with noise inside
// the latent subspace.
func hiddenState(rng *rand.Rand, weights, basis [][]float32, c int) []float32 {
	h := make([]float32, hidden)
	row := weights[c]
	var norm float64
	for _, v := range row {
		norm += float64(v) * float64(v)
	}
	scale := 3.3 / float32(math.Sqrt(norm))
	for j := range h {
		h[j] = scale * row[j]
	}
	for k := range basis {
		coef := float32(rng.NormFloat64() * 0.3)
		for j := range h {
			h[j] += coef * basis[k][j]
		}
	}
	return h
}
