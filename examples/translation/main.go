// Translation: greedy decoding over an extreme vocabulary with
// approximate screening — the paper's NMT motivation (Fig. 11(a)).
// A synthetic autoregressive decoder emits tokens; each step's next
// word is the classifier's argmax, so any screening mistake perturbs
// the rest of the sentence. The example decodes the same sentences
// with the exact classifier and with screening at several candidate
// budgets and reports token agreement.
//
//	go run ./examples/translation
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"enmc"
)

const (
	vocab  = 8000
	hidden = 128
	latent = 24
	sents  = 8
	length = 14
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Synthetic decoder: classifier W (the output embedding) plus a
	// random recurrent transition.
	a := randMatrix(rng, vocab, latent, 1)
	basis := randMatrix(rng, latent, hidden, 1/math.Sqrt(latent))
	weights := matmul(a, basis)
	cls, err := enmc.NewClassifier(weights, make([]float32, vocab))
	if err != nil {
		log.Fatal(err)
	}
	transition := randMatrix(rng, hidden, hidden, 1/math.Sqrt(hidden))

	// Train the screener on decoder states (the distribution it will
	// see at inference time).
	var train [][]float32
	for s := 0; s < 40; s++ {
		h0 := startState(rng, weights, basis, rng.Intn(vocab))
		decode(cls, transition, weights, h0, length, func(h []float32) int {
			train = append(train, append([]float32(nil), h...))
			return cls.Predict(h)
		})
	}
	scr, err := enmc.TrainScreener(cls, train, enmc.ScreenerConfig{Seed: 2, Epochs: 10})
	if err != nil {
		log.Fatal(err)
	}

	// Reference decodes with the exact classifier.
	starts := make([][]float32, sents)
	refs := make([][]int, sents)
	for s := range starts {
		starts[s] = startState(rng, weights, basis, rng.Intn(vocab))
		refs[s] = decode(cls, transition, weights, starts[s], length, cls.Predict)
	}

	fmt.Printf("vocabulary %d, %d sentences × %d tokens, screener %.1f%% of classifier\n\n",
		vocab, sents, length, 100*float64(scr.WeightBytes())/float64(cls.WeightBytes()))
	fmt.Printf("%-10s %-14s %s\n", "budget", "exact dots/tok", "token agreement vs exact decode")

	for _, budget := range []int{vocab / 200, vocab / 100, vocab / 50, vocab / 20} {
		match, total := 0, 0
		for s := range starts {
			hyp := decode(cls, transition, weights, starts[s], length, func(h []float32) int {
				return enmc.Classify(cls, scr, h, enmc.TopM(budget)).Predict()
			})
			for t := range hyp {
				if hyp[t] == refs[s][t] {
					match++
				}
				total++
			}
		}
		fmt.Printf("%-10s %-14d %.1f%%\n",
			fmt.Sprintf("%.1f%%", 100*float64(budget)/vocab), budget,
			100*float64(match)/float64(total))
	}
	fmt.Println("\nlike the paper's BLEU curve, quality saturates at a small budget")
}

// decode runs greedy autoregressive decoding: h ← tanh(0.8·R·h +
// 1.6·emb(y)). classify picks each token.
func decode(cls *enmc.Classifier, transition, weights [][]float32, h0 []float32, n int, classify func([]float32) int) []int {
	h := append([]float32(nil), h0...)
	out := make([]int, 0, n)
	for t := 0; t < n; t++ {
		y := classify(h)
		out = append(out, y)
		next := make([]float32, hidden)
		for i := range transition {
			var acc float32
			for j, v := range transition[i] {
				acc += v * h[j]
			}
			next[i] = acc
		}
		row := weights[y]
		var norm float64
		for _, v := range row {
			norm += float64(v) * float64(v)
		}
		inv := 1.6 / float32(math.Sqrt(norm))
		for i := range next {
			next[i] = float32(math.Tanh(float64(0.8*next[i] + inv*row[i])))
		}
		h = next
	}
	return out
}

func startState(rng *rand.Rand, weights, basis [][]float32, c int) []float32 {
	h := make([]float32, hidden)
	row := weights[c]
	var norm float64
	for _, v := range row {
		norm += float64(v) * float64(v)
	}
	scale := 3.0 / float32(math.Sqrt(norm))
	for j := range h {
		h[j] = scale * row[j]
	}
	for k := range basis {
		coef := float32(rng.NormFloat64() * 0.3)
		for j := range h {
			h[j] += coef * basis[k][j]
		}
	}
	return h
}

func randMatrix(rng *rand.Rand, rows, cols int, scale float64) [][]float32 {
	m := make([][]float32, rows)
	for i := range m {
		m[i] = make([]float32, cols)
		for j := range m[i] {
			m[i][j] = float32(rng.NormFloat64() * scale)
		}
	}
	return m
}

func matmul(a, b [][]float32) [][]float32 {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := make([][]float32, rows)
	for i := range out {
		out[i] = make([]float32, cols)
		for k := 0; k < inner; k++ {
			aik := a[i][k]
			for j := 0; j < cols; j++ {
				out[i][j] += aik * b[k][j]
			}
		}
	}
	return out
}
