package enmc

import (
	"fmt"
	"io"
	"strings"

	"enmc/internal/compiler"
	"enmc/internal/enmc"
	"enmc/internal/isa"
	"enmc/internal/nmp"
	"enmc/internal/system"
)

// SimTask describes a classification offload for the architecture
// simulator.
type SimTask struct {
	Categories int // l
	Hidden     int // d
	Reduced    int // k (defaults to d/4)
	Candidates int // m per inference (defaults to l/50)
	Batch      int // defaults to 1
	// Sigmoid selects the multi-label activation (recommendation).
	Sigmoid bool
	// FullClassification disables screening: the task streams every
	// weight row, which is how the TensorDIMM baselines natively run.
	FullClassification bool
}

func (t *SimTask) defaults() {
	if t.Reduced <= 0 {
		t.Reduced = t.Hidden / 4
		if t.Reduced < 1 {
			t.Reduced = 1
		}
	}
	if t.Candidates <= 0 {
		t.Candidates = t.Categories / 50
		if t.Candidates < 1 {
			t.Candidates = 1
		}
	}
	if t.Batch <= 0 {
		t.Batch = 1
	}
}

// SimResult reports a whole-system simulation: an 8-channel ×
// 8-ranks-per-channel memory system of the selected NMP design
// executing the task (paper Table 3 topology).
type SimResult struct {
	Design  string
	Seconds float64 // wall time of the batched offload
	Cycles  int64   // per-rank DRAM-clock cycles
	// Energy breakdown of the run in joules, the Fig. 14 split.
	DRAMStaticJoules float64
	DRAMAccessJoules float64
	LogicJoules      float64
	// DRAMBytes is the weight/feature traffic of one rank.
	DRAMBytes int64
	// PhaseCycles attributes one rank's unit-busy cycles to pipeline
	// phases (screen, filter, exact-recompute, activation, ...).
	PhaseCycles map[string]int64
}

// TotalJoules sums the energy components.
func (r SimResult) TotalJoules() float64 {
	return r.DRAMStaticJoules + r.DRAMAccessJoules + r.LogicJoules
}

// DesignByName resolves a simulated NMP design: "enmc", "tensordimm",
// "tensordimm-large", "nda" or "chameleon".
func designByName(name string) (nmp.Design, error) {
	switch strings.ToLower(name) {
	case "", "enmc":
		return nmp.ENMC(), nil
	case "tensordimm":
		return nmp.TensorDIMM(), nil
	case "tensordimm-large", "tdlarge":
		return nmp.TensorDIMMLarge(), nil
	case "nda":
		return nmp.NDA(), nil
	case "chameleon":
		return nmp.Chameleon(), nil
	default:
		return nmp.Design{}, fmt.Errorf("enmc: unknown design %q", name)
	}
}

// Simulate compiles the task for the named design ("enmc",
// "tensordimm", "tensordimm-large", "nda", "chameleon") and runs the
// cycle-level system simulation. Pass WithTracer to capture the
// representative rank's execution as structured spans (screen,
// filter, exact-recompute and DRAM phases) in simulated time.
func Simulate(design string, task SimTask, opts ...Option) (SimResult, error) {
	var o callOpts
	o.apply(opts)
	d, err := designByName(design)
	if err != nil {
		return SimResult{}, err
	}
	task.defaults()
	mode := compiler.ModeScreened
	if task.FullClassification {
		mode = compiler.ModeFull
	}
	cfg := system.Default(d)
	cfg.Tracer = o.tracer
	res, err := cfg.Run(compiler.Task{
		Categories: task.Categories,
		Hidden:     task.Hidden,
		Reduced:    task.Reduced,
		Candidates: task.Candidates,
		Batch:      task.Batch,
		Sigmoid:    task.Sigmoid,
	}, mode)
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{
		Design:           res.Design,
		Seconds:          res.Seconds,
		Cycles:           res.Cycles,
		DRAMStaticJoules: res.Energy.DRAMStaticJ,
		DRAMAccessJoules: res.Energy.DRAMAccessJ,
		LogicJoules:      res.Energy.LogicJ,
		DRAMBytes:        res.RankStats.DRAM.BytesRead + res.RankStats.DRAM.BytesWritten,
		PhaseCycles:      res.RankStats.Phases.ByName(),
	}, nil
}

// Program is an assembled ENMC instruction stream.
type Program struct {
	ops   []enmc.Op
	trace io.Writer
}

// AssembleProgram assembles ENMC assembly source (the Table 1
// mnemonics; see internal/isa for the syntax) into a runnable
// program.
func AssembleProgram(src string) (*Program, error) {
	instrs, err := isa.AssembleProgram(src)
	if err != nil {
		return nil, err
	}
	ops := make([]enmc.Op, len(instrs))
	for i, in := range instrs {
		ops[i] = enmc.Op{I: in}
	}
	return &Program{ops: ops}, nil
}

// Disassemble renders the program back as assembly text.
func (p *Program) Disassemble() string {
	instrs := make([]isa.Instruction, len(p.ops))
	for i, op := range p.ops {
		instrs[i] = op.I
	}
	return isa.Disassemble(instrs)
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.ops) }

// ProgramResult reports a hand-written program's execution on one
// ENMC rank engine.
type ProgramResult struct {
	Cycles       int64 // DRAM-clock cycles
	Seconds      float64
	Instructions int64
	INT4MACs     int64
	FP32MACs     int64
	DRAMReads    int64 // burst count
	DRAMWrites   int64
	RowHitRate   float64
}

// RunOnDIMM executes the program on a single default-configured ENMC
// rank engine (Table 3 parameters) and reports timing and activity.
func (p *Program) RunOnDIMM() (ProgramResult, error) {
	eng, err := enmc.New(enmc.Default())
	if err != nil {
		return ProgramResult{}, err
	}
	if p.trace != nil {
		eng.SetTrace(p.trace)
	}
	res, err := eng.Run(p.ops)
	if err != nil {
		return ProgramResult{}, err
	}
	return ProgramResult{
		Cycles:       res.Cycles,
		Seconds:      res.Seconds,
		Instructions: res.Stats.Instructions,
		INT4MACs:     res.Stats.INT4MACOps,
		FP32MACs:     res.Stats.FP32MACOps,
		DRAMReads:    res.Stats.DRAM.Reads,
		DRAMWrites:   res.Stats.DRAM.Writes,
		RowHitRate:   res.Stats.DRAM.HitRate(),
	}, nil
}

// SetTrace directs a per-instruction execution trace to w when the
// program runs on the DIMM (nil disables).
func (p *Program) SetTrace(w io.Writer) { p.trace = w }
