package enmc

import (
	"fmt"
	"sort"

	"enmc/internal/experiments"
)

// RunExperiment regenerates one of the paper's tables or figures (or
// one of this repository's extension experiments) and returns it as
// formatted text. Names match cmd/enmc-bench: table2…table5,
// fig4…fig15, ablations, ext-scaleout, ext-host. Quick mode shrinks
// the algorithm-level workloads for a fast smoke run.
func RunExperiment(name string, quick bool) (string, error) {
	qo := experiments.QualityOptions{Seed: 42}
	po := experiments.PerfOptions{}
	if quick {
		qo.LTarget = 384
		qo.MaxHidden = 128
		qo.TrainSamples = 256
		qo.TestSamples = 48
		qo.Epochs = 6
		po.SampleRows = 2048
	}
	f, ok := experimentRegistry(qo, po)[name]
	if !ok {
		return "", fmt.Errorf("enmc: unknown experiment %q (see ExperimentNames)", name)
	}
	t, err := f()
	if err != nil {
		return "", err
	}
	return t.String(), nil
}

// ExperimentNames lists the runnable experiments in sorted order.
func ExperimentNames() []string {
	reg := experimentRegistry(experiments.QualityOptions{}, experiments.PerfOptions{})
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func experimentRegistry(qo experiments.QualityOptions, po experiments.PerfOptions) map[string]func() (*experiments.Table, error) {
	wrap := func(f func() *experiments.Table) func() (*experiments.Table, error) {
		return func() (*experiments.Table, error) { return f(), nil }
	}
	return map[string]func() (*experiments.Table, error){
		"table2":       wrap(experiments.Table2),
		"table3":       wrap(experiments.Table3),
		"table4":       wrap(experiments.Table4),
		"table5":       wrap(experiments.Table5),
		"fig4":         wrap(experiments.Fig4),
		"fig5a":        wrap(experiments.Fig5a),
		"fig5b":        wrap(experiments.Fig5b),
		"fig11":        func() (*experiments.Table, error) { return experiments.Fig11(qo) },
		"fig12":        func() (*experiments.Table, error) { return experiments.Fig12(qo) },
		"fig13":        func() (*experiments.Table, error) { return experiments.Fig13(po) },
		"fig14":        func() (*experiments.Table, error) { return experiments.Fig14(po) },
		"fig15":        func() (*experiments.Table, error) { return experiments.Fig15(po) },
		"ablations":    func() (*experiments.Table, error) { return experiments.Ablations(qo) },
		"ext-scaleout": func() (*experiments.Table, error) { return experiments.ExtScaleOut(po) },
		"ext-host":     func() (*experiments.Table, error) { return experiments.ExtHostInterface(po) },
		"ext-beam":     func() (*experiments.Table, error) { return experiments.ExtBeam(qo) },
		"ext-gpu":      func() (*experiments.Table, error) { return experiments.ExtGPU(po) },
	}
}
