// Package enmc is a from-scratch reproduction of "ENMC: Extreme
// Near-Memory Classification via Approximate Screening" (MICRO 2021).
//
// The package exposes the paper's two contributions behind one
// facade:
//
//   - the approximate-screening algorithm for extreme classification:
//     a sparse-random-projection + learned low-rank + quantized
//     screener selects a small candidate set, which is then
//     recomputed exactly (NewClassifier, TrainScreener, Classify);
//
//   - the ENMC near-memory architecture: a cycle-level simulator of
//     the per-rank Screener/Executor DIMM design, its instruction
//     set, its compiler, the baseline NMP designs and the energy
//     model (Simulate, AssembleProgram).
//
// Everything is implemented on the Go standard library; the
// subsystems live under internal/ (tensor math, DDR4 timing
// simulation, ISA, compiler, baselines, metrics) and are orchestrated
// here. See README.md for a tour and DESIGN.md for the per-experiment
// reproduction index.
package enmc

import (
	"context"
	"fmt"
	"io"

	"enmc/internal/core"
	"enmc/internal/quant"
	"enmc/internal/tensor"
)

// Precision selects the screener's fixed-point format.
type Precision int

// Supported screening precisions. INT4 is the paper's (and the ENMC
// hardware's) operating point.
const (
	INT2 Precision = 2
	INT4 Precision = 4
	INT8 Precision = 8
)

// Classifier is a full (exact) extreme-classification layer:
// z = W·h + b over l categories.
type Classifier struct {
	inner *core.Classifier
}

// NewClassifier builds a classifier from row-major weights (one row
// per category) and a bias vector.
func NewClassifier(weights [][]float32, bias []float32) (*Classifier, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("enmc: empty weight matrix")
	}
	w := tensor.FromRows(weights)
	inner, err := core.NewClassifier(w, bias)
	if err != nil {
		return nil, err
	}
	return &Classifier{inner: inner}, nil
}

// Categories returns the number of output classes l.
func (c *Classifier) Categories() int { return c.inner.Categories() }

// Hidden returns the hidden dimension d.
func (c *Classifier) Hidden() int { return c.inner.Hidden() }

// Logits computes the exact pre-softmax outputs for a hidden vector.
func (c *Classifier) Logits(h []float32) []float32 { return c.inner.Logits(h) }

// Predict returns the exact argmax class.
func (c *Classifier) Predict(h []float32) int { return c.inner.Predict(h) }

// WeightBytes reports the FP32 classifier footprint — the quantity
// that makes extreme classification memory-bound.
func (c *Classifier) WeightBytes() int64 { return c.inner.WeightBytes() }

// ScreenerConfig configures the approximate-screening module
// (paper Eq. 3): z̃ = W̃·(P·h) + b̃ with P a sparse random projection
// to Reduced dimensions and W̃ learned by distillation.
type ScreenerConfig struct {
	// Reduced is k, the projected dimension (k ≪ d). The paper's
	// operating point is d/4. Defaults to d/4 when zero.
	Reduced int
	// Precision is the fixed-point format; defaults to INT4.
	Precision Precision
	// Seed drives the projection matrix and training shuffle.
	Seed uint64
	// Epochs of SGD distillation (Algorithm 1); defaults to 5.
	Epochs int
	// QuantAware enables straight-through-estimator fine-tuning for
	// the final third of training — useful at INT2, unnecessary at
	// the default INT4.
	QuantAware bool
}

// Screener approximates a classifier cheaply and ranks candidates.
type Screener struct {
	inner *core.Screener
}

// TrainScreener runs Algorithm 1: distill the frozen classifier into
// a screener on the given hidden-vector samples.
func TrainScreener(c *Classifier, samples [][]float32, cfg ScreenerConfig) (*Screener, error) {
	k := cfg.Reduced
	if k <= 0 {
		k = c.Hidden() / 4
		if k < 1 {
			k = 1
		}
	}
	prec := cfg.Precision
	if prec == 0 {
		prec = INT4
	}
	inner, _, err := core.TrainScreener(c.inner, samples, core.Config{
		Categories: c.Categories(),
		Hidden:     c.Hidden(),
		Reduced:    k,
		Precision:  quant.Bits(prec),
		Seed:       cfg.Seed,
	}, core.TrainOptions{Epochs: cfg.Epochs, Seed: cfg.Seed + 1, QuantAware: cfg.QuantAware})
	if err != nil {
		return nil, err
	}
	return &Screener{inner: inner}, nil
}

// Screen returns the approximate logits z̃ for a hidden vector,
// computed on the quantized datapath exactly as the hardware does.
func (s *Screener) Screen(h []float32) []float32 { return s.inner.Screen(h) }

// WeightBytes reports the deployed screener footprint (quantized W̃,
// scales, bias, and the 2-bit projection).
func (s *Screener) WeightBytes() int64 { return s.inner.WeightBytes() }

// Selection chooses candidates from approximate logits: either the
// top-M values or everything above a threshold (the hardware's
// comparator filter).
type Selection = core.Selection

// TopM selects the m highest approximate logits as candidates.
func TopM(m int) Selection { return core.TopM(m) }

// Threshold selects all approximate logits ≥ t as candidates.
func Threshold(t float32) Selection { return core.Threshold(t) }

// CalibrateThreshold tunes a threshold on validation features so the
// average candidate count is near target (paper Section 4.2).
func CalibrateThreshold(s *Screener, validation [][]float32, target int) float32 {
	return core.CalibrateThreshold(s.inner, validation, target)
}

// Result is the outcome of screening-based classification.
type Result struct {
	// Logits is the mixed pre-softmax vector: approximate everywhere,
	// exact at the candidates.
	Logits []float32
	// Candidates are the class indices recomputed exactly.
	Candidates []int
}

// Predict returns the argmax of the mixed logits.
func (r *Result) Predict() int { return tensor.ArgMax(r.Logits) }

// TopK returns the k highest-scoring classes of the mixed logits.
func (r *Result) TopK(k int) []int { return tensor.TopK(r.Logits, k) }

// Probabilities softmax-normalizes the mixed logits.
func (r *Result) Probabilities() []float32 {
	res := core.Result{Mixed: r.Logits}
	return res.Probabilities()
}

// Classify runs the paper's full inference pipeline (Section 4.2):
// screen, select candidates, recompute them exactly, merge. Stage
// latencies and candidate counts land in the telemetry registry (see
// MetricsSnapshot); pass WithTracer to also record per-stage spans.
func Classify(c *Classifier, s *Screener, h []float32, sel Selection, opts ...Option) *Result {
	var o callOpts
	o.apply(opts)
	res := core.ClassifyApproxTraced(c.inner, s.inner, h, sel, o.tracer)
	return &Result{Logits: res.Mixed, Candidates: res.Candidates}
}

// ClassifyBatch applies Classify to a batch of hidden vectors over a
// bounded worker pool (GOMAXPROCS workers); results are ordered and
// bit-identical to the serial loop.
func ClassifyBatch(c *Classifier, s *Screener, batch [][]float32, sel Selection, opts ...Option) []*Result {
	var o callOpts
	o.apply(opts)
	inner := core.ClassifyBatchTraced(c.inner, s.inner, batch, sel, o.tracer)
	out := make([]*Result, len(inner))
	for i, res := range inner {
		out[i] = &Result{Logits: res.Mixed, Candidates: res.Candidates}
	}
	return out
}

// ClassifyContext is Classify with a cancellation point: when ctx is
// already done it returns ctx.Err() without touching the model.
// Serving stacks thread per-request deadlines through here.
func ClassifyContext(ctx context.Context, c *Classifier, s *Screener, h []float32, sel Selection, opts ...Option) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return Classify(c, s, h, sel, opts...), nil
}

// ClassifyBatchContext is ClassifyBatch with cancellation honored
// between batch items: once ctx is done no further item starts and
// the call returns ctx.Err() with a nil slice. In-flight items (one
// screen matmul plus a few exact rows each) run to completion.
func ClassifyBatchContext(ctx context.Context, c *Classifier, s *Screener, batch [][]float32, sel Selection, opts ...Option) ([]*Result, error) {
	var o callOpts
	o.apply(opts)
	inner, err := core.ClassifyBatchCtx(ctx, c.inner, s.inner, batch, sel, o.tracer)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(inner))
	for i, res := range inner {
		out[i] = &Result{Logits: res.Mixed, Candidates: res.Candidates}
	}
	return out, nil
}

// SaveScreener serializes a trained screener to w in the binary
// deployment format (see internal/core serialization).
func SaveScreener(s *Screener, w io.Writer) error {
	_, err := s.inner.WriteTo(w)
	return err
}

// LoadScreener reads a screener saved by SaveScreener. The restored
// screener produces bit-identical outputs.
func LoadScreener(r io.Reader) (*Screener, error) {
	inner, err := core.ReadScreener(r)
	if err != nil {
		return nil, err
	}
	return &Screener{inner: inner}, nil
}

// SaveClassifier serializes the full classifier (large: l×d float32).
func SaveClassifier(c *Classifier, w io.Writer) error {
	_, err := c.inner.WriteTo(w)
	return err
}

// LoadClassifier reads a classifier saved by SaveClassifier.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	inner, err := core.ReadClassifier(r)
	if err != nil {
		return nil, err
	}
	return &Classifier{inner: inner}, nil
}
