package enmc

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"enmc/internal/core"
)

// trainedModel builds a small classifier+screener pair through the
// public API.
func trainedModel(t testing.TB) (*Classifier, *Screener, [][]float32) {
	t.Helper()
	cls, samples := publicModel(t, 256, 64)
	scr, err := TrainScreener(cls, samples[:96], ScreenerConfig{Seed: 3, Epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	return cls, scr, samples[96:]
}

// TestMetricsSnapshotAfterBatch is the acceptance check: after a
// ClassifyBatch the registry's candidate-count and latency histograms
// are non-zero.
func TestMetricsSnapshotAfterBatch(t *testing.T) {
	ResetMetrics()
	cls, scr, test := trainedModel(t)
	out := ClassifyBatch(cls, scr, test, TopM(16))
	if len(out) != len(test) {
		t.Fatalf("batch returned %d results, want %d", len(out), len(test))
	}

	snap := MetricsSnapshot()
	if got := snap.Counters["core.classify.count"]; got != int64(len(test)) {
		t.Errorf("classify count = %d, want %d", got, len(test))
	}
	cands := snap.Histograms["core.classify.candidates"]
	if cands.Count == 0 || cands.Sum == 0 {
		t.Errorf("candidate histogram empty: %+v", cands)
	}
	if cands.Sum != float64(16*len(test)) {
		t.Errorf("candidate sum = %g, want %d", cands.Sum, 16*len(test))
	}
	lat := snap.Histograms["core.classify.latency_ns"]
	if lat.Count == 0 || lat.Sum <= 0 {
		t.Errorf("latency histogram empty: %+v", lat)
	}
	for _, name := range []string{"core.classify.screen_ns", "core.classify.exact_ns", "core.classify.batch_ns"} {
		if snap.Histograms[name].Count == 0 {
			t.Errorf("%s empty", name)
		}
	}
	if snap.Histograms["core.classify.batch_size"].Sum != float64(len(test)) {
		t.Errorf("batch_size sum = %g", snap.Histograms["core.classify.batch_size"].Sum)
	}

	// The snapshot is JSON-marshalable (the -metrics contract).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot marshal: %v", err)
	}
}

// TestClassifyBatchParallelMatchesSerial verifies the worker pool is
// bit-identical to per-item Classify (run with -race for the
// concurrency proof).
func TestClassifyBatchParallelMatchesSerial(t *testing.T) {
	cls, scr, test := trainedModel(t)
	got := ClassifyBatch(cls, scr, test, TopM(12))
	for i, h := range test {
		want := Classify(cls, scr, h, TopM(12))
		if !reflect.DeepEqual(got[i].Logits, want.Logits) {
			t.Fatalf("item %d logits diverge under parallel batch", i)
		}
		if !reflect.DeepEqual(got[i].Candidates, want.Candidates) {
			t.Fatalf("item %d candidates diverge under parallel batch", i)
		}
	}
}

// TestClassifyTracerSpans checks WithTracer records per-stage spans
// and the export is valid Chrome trace JSON.
func TestClassifyTracerSpans(t *testing.T) {
	cls, scr, test := trainedModel(t)
	tr := NewTracer()
	Classify(cls, scr, test[0], TopM(8), WithTracer(tr))
	if tr.SpanCount() != 3 {
		t.Fatalf("span count = %d, want 3 (screen/select/exact)", tr.SpanCount())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"screen", "select", "exact-recompute"} {
		if !strings.Contains(buf.String(), `"name":"`+name+`"`) {
			t.Errorf("trace missing span %q", name)
		}
	}
}

// TestSimulateTraceCoversPhases is the acceptance check for the
// simulator: a traced enmc-design run produces spans covering the
// screen, filter, exact-recompute and DRAM phases, and the Chrome
// trace parses back through encoding/json.
func TestSimulateTraceCoversPhases(t *testing.T) {
	tr := NewTracer()
	res, err := Simulate("enmc", SimTask{Categories: 65536, Hidden: 512, Batch: 2}, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if tr.SpanCount() == 0 {
		t.Fatal("no spans recorded")
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range out.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"screen", "filter", "exact-recompute", "dram.read.screen", "dram.read.exact-recompute"} {
		if !names[want] {
			t.Errorf("trace missing span name %q (have %d distinct names)", want, len(names))
		}
	}

	// Per-phase cycle attribution reached the facade result.
	for _, phase := range []string{"screen", "filter", "exact-recompute"} {
		if res.PhaseCycles[phase] == 0 {
			t.Errorf("PhaseCycles[%q] = 0", phase)
		}
	}
}

// TestSimulateJSONRoundTrip pins the machine-readable SimResult shape
// the enmc-sim -json flag emits.
func TestSimulateJSONRoundTrip(t *testing.T) {
	res, err := Simulate("enmc", SimTask{Categories: 32768, Hidden: 256})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back SimResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycles != res.Cycles || back.TotalJoules() != res.TotalJoules() {
		t.Errorf("round trip changed result: %+v vs %+v", back, res)
	}
	if len(back.PhaseCycles) == 0 {
		t.Error("PhaseCycles lost in round trip")
	}
}

// TestDRAMMetricsToggle checks the opt-in DRAM command mirror.
func TestDRAMMetricsToggle(t *testing.T) {
	ResetMetrics()
	EnableDRAMMetrics()
	defer DisableDRAMMetrics()
	if _, err := Simulate("enmc", SimTask{Categories: 16384, Hidden: 256}); err != nil {
		t.Fatal(err)
	}
	snap := MetricsSnapshot()
	if snap.Counters["dram.reads"] == 0 {
		t.Error("dram.reads = 0 with metrics enabled")
	}
	if snap.Counters["dram.row_hits"]+snap.Counters["dram.row_misses"] == 0 {
		t.Error("no row hit/miss counts with metrics enabled")
	}

	DisableDRAMMetrics()
	before := MetricsSnapshot().Counters["dram.reads"]
	if _, err := Simulate("enmc", SimTask{Categories: 16384, Hidden: 256}); err != nil {
		t.Fatal(err)
	}
	if after := MetricsSnapshot().Counters["dram.reads"]; after != before {
		t.Errorf("dram.reads advanced while disabled: %d -> %d", before, after)
	}
}

// TestGlobalTracerCapturesUnoptionedCalls checks SetGlobalTracer
// reaches call sites with no explicit option (the enmc-bench -trace
// path).
func TestGlobalTracerCapturesUnoptionedCalls(t *testing.T) {
	cls, scr, test := trainedModel(t)
	tr := NewTracer()
	SetGlobalTracer(tr)
	defer SetGlobalTracer(nil)
	Classify(cls, scr, test[0], TopM(4))
	if tr.SpanCount() == 0 {
		t.Fatal("global tracer saw no spans")
	}
}

// TestClassifyNoAllocTelemetry guards the hot-path contract: with the
// default nil tracer, the always-on metrics add zero allocations over
// the bare pipeline stages.
func TestClassifyNoAllocTelemetry(t *testing.T) {
	cls, scr, test := trainedModel(t)
	h := test[0]
	sel := core.TopM(10)

	// The bare pipeline, stage by stage, with no telemetry.
	bare := func() {
		ztilde := scr.inner.Screen(h)
		cands := core.SelectCandidates(ztilde, sel)
		exact := cls.inner.LogitsRows(cands, h)
		for j, c := range cands {
			ztilde[c] = exact[j]
		}
	}
	instrumented := func() {
		core.ClassifyApprox(cls.inner, scr.inner, h, sel)
	}

	base := testing.AllocsPerRun(200, bare)
	// One extra allocation is the *Result wrapper itself; anything
	// beyond that would be telemetry leaking into the hot path.
	got := testing.AllocsPerRun(200, instrumented)
	if got > base+1 {
		t.Errorf("ClassifyApprox allocates %.1f/op, bare pipeline %.1f/op (+1 for Result allowed)", got, base)
	}
}
