package enmc_test

import (
	"fmt"
	"math"

	"enmc"
)

// buildToyModel constructs a deterministic 64-class toy classifier
// whose rows live in a 4-dimensional latent space, plus one query
// vector peaked toward class 7. Real uses train on a front-end's
// hidden states; the shapes of the calls are identical.
func buildToyModel() (*enmc.Classifier, [][]float32, []float32) {
	const l, d, rank = 64, 16, 4
	// Tiny deterministic LCG so the example output is stable.
	state := uint64(12345)
	next := func() float32 {
		state = state*6364136223846793005 + 1442695040888963407
		return float32(int32(state>>33))/float32(1<<31)*2 - 1
	}
	basis := make([][]float32, rank)
	for i := range basis {
		basis[i] = make([]float32, d)
		for j := range basis[i] {
			basis[i][j] = next() / float32(math.Sqrt(rank))
		}
	}
	weights := make([][]float32, l)
	for c := range weights {
		weights[c] = make([]float32, d)
		for r := 0; r < rank; r++ {
			coef := next()
			for j := 0; j < d; j++ {
				weights[c][j] += coef * basis[r][j]
			}
		}
	}
	var samples [][]float32
	for n := 0; n < 96; n++ {
		c := n % l
		h := make([]float32, d)
		var norm float64
		for _, v := range weights[c] {
			norm += float64(v) * float64(v)
		}
		scale := 3.3 / float32(math.Sqrt(norm))
		for j := range h {
			h[j] = scale * weights[c][j]
		}
		for r := 0; r < rank; r++ {
			coef := 0.3 * next()
			for j := range h {
				h[j] += coef * basis[r][j]
			}
		}
		samples = append(samples, h)
	}
	cls, _ := enmc.NewClassifier(weights, make([]float32, l))
	return cls, samples, samples[7] // sample 7 is peaked toward class 7
}

// Example demonstrates the whole screening pipeline: train a
// screener, classify with a small candidate budget, and compare
// against the exact layer.
func Example() {
	cls, samples, query := buildToyModel()

	scr, err := enmc.TrainScreener(cls, samples, enmc.ScreenerConfig{Seed: 1, Epochs: 8})
	if err != nil {
		panic(err)
	}
	res := enmc.Classify(cls, scr, query, enmc.TopM(4))
	fmt.Println("screened prediction:", res.Predict())
	fmt.Println("exact prediction:   ", cls.Predict(query))
	fmt.Println("candidates recomputed exactly:", len(res.Candidates), "of", cls.Categories())
	// Output:
	// screened prediction: 7
	// exact prediction:    7
	// candidates recomputed exactly: 4 of 64
}

// ExampleSimulate runs the cycle-level system simulation for a
// Transformer-scale classification offload on the ENMC design and on
// the TensorDIMM baseline.
func ExampleSimulate() {
	task := enmc.SimTask{Categories: 267744, Hidden: 512, Batch: 1}
	en, err := enmc.Simulate("enmc", task)
	if err != nil {
		panic(err)
	}
	td, err := enmc.Simulate("tensordimm", task)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ENMC faster than TensorDIMM: %v\n", en.Seconds < td.Seconds)
	fmt.Printf("ENMC cheaper in energy:      %v\n", en.TotalJoules() < td.TotalJoules())
	// Output:
	// ENMC faster than TensorDIMM: true
	// ENMC cheaper in energy:      true
}

// ExampleAssembleProgram assembles a minimal ENMC program (Table 1
// mnemonics) and executes it on one simulated rank.
func ExampleAssembleProgram() {
	prog, err := enmc.AssembleProgram(`
LDR wgt_i4, 0x0
MUL_ADD_INT4 feat_i4, wgt_i4
FILTER psum_i4
RETURN
`)
	if err != nil {
		panic(err)
	}
	res, err := prog.RunOnDIMM()
	if err != nil {
		panic(err)
	}
	fmt.Println("instructions:", res.Instructions)
	fmt.Println("INT4 MACs:   ", res.INT4MACs)
	// Output:
	// instructions: 4
	// INT4 MACs:    512
}
