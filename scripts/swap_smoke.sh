#!/usr/bin/env bash
# Hot-swap smoke test: publish four registry versions (good, good,
# low-agreement, corrupted), serve the first, and drive sustained
# loadgen traffic while triggering reloads —
#
#   v2        must swap in        (canary passes)        -> HTTP 200
#   v3-bad    must be rejected    (canary agreement low)  -> HTTP 409
#   v4-corrupt must be rejected   (checksum mismatch)     -> HTTP 409
#
# and the loadgen run (-fail-on-error) fails the script if ANY request
# observed a non-200 during the swaps. Exercises: registry publish,
# checksum verification, canary gate, rollback-on-reject, and the
# zero-downtime drain ordering of the Swappable backend.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
SERVE_PID=""
# Benchmark governance: with SMOKE_ARTIFACTS set, the loadgen JSON
# report is copied there for enmc-report ingestion / CI upload;
# SMOKE_DURATION stretches the run for nightly full-length passes.
ART="${SMOKE_ARTIFACTS:-}"
if [ -n "$ART" ]; then
    mkdir -p "$ART"
    ART="$(cd "$ART" && pwd)" # scripts cd around; artifact dir must stay absolute
fi
DUR="${SMOKE_DURATION:-9s}"
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building =="
cd "$ROOT"
go build -o "$WORK/enmc-train" ./cmd/enmc-train
go build -o "$WORK/enmc-serve" ./cmd/enmc-serve
go build -o "$WORK/enmc-loadgen" ./cmd/enmc-loadgen

echo "== generating demo model =="
cd "$WORK"
./enmc-train -demo >/dev/null

REG="$WORK/models"
echo "== publishing v1 (serving baseline) and v2 (good upgrade) =="
./enmc-train -classifier demo-cls.bin -features demo-feats.bin \
    -registry "$REG" -version v1 -epochs 2 -k 32 >/dev/null
./enmc-train -classifier demo-cls.bin -features demo-feats.bin \
    -registry "$REG" -version v2 -parent v1 -epochs 3 -k 32 >/dev/null

echo "== publishing v3-bad (k=1 INT2 1-epoch screener: fails canary) =="
./enmc-train -classifier demo-cls.bin -features demo-feats.bin \
    -registry "$REG" -version v3-bad -parent v1 -epochs 1 -k 1 -bits 2 >/dev/null

echo "== publishing v4-corrupt, then corrupting its screener =="
./enmc-train -classifier demo-cls.bin -features demo-feats.bin \
    -registry "$REG" -version v4-corrupt -parent v2 -epochs 2 -k 32 >/dev/null
# Flip bytes in the middle of the published artifact: the manifest
# checksum must now reject it at load time.
dd if=/dev/zero of="$REG/v4-corrupt/screener.bin" bs=1 seek=4096 count=64 conv=notrunc 2>/dev/null

echo "== starting enmc-serve pinned at v1 =="
./enmc-serve -model-root "$REG" -model-version v1 -canary-floor 0.5 \
    -addr 127.0.0.1:0 -port-file "$WORK/port" >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.log"; echo "FAIL: server died"; exit 1; }
    sleep 0.1
done
PORT="$(cat "$WORK/port")"
BASE="http://127.0.0.1:$PORT"
echo "   serving on $BASE"

reload() { # reload <json-body> -> echoes HTTP status
    curl -s -o "$WORK/reload.json" -w '%{http_code}' \
        -X POST -H 'Content-Type: application/json' -d "$1" "$BASE/v1/model/reload"
}

echo "== driving loadgen while swapping =="
./enmc-loadgen -addr "127.0.0.1:$PORT" -dim 128 -duration "$DUR" -concurrency 4 \
    -fail-on-error -log-json -scenario serve-hotswap >"$WORK/loadgen.json" 2>&1 &
LOADGEN_PID=$!
sleep 2

echo "-- reload to v2 (must succeed)"
code="$(reload '{"version":"v2"}')"
[ "$code" = "200" ] || { cat "$WORK/reload.json"; echo "FAIL: v2 reload got HTTP $code, want 200"; exit 1; }
grep -q '"version":"v2"' "$WORK/reload.json" || { echo "FAIL: v2 reload body: $(cat "$WORK/reload.json")"; exit 1; }
sleep 1

echo "-- reload to v3-bad (must be rejected by canary, 409)"
code="$(reload '{"version":"v3-bad"}')"
[ "$code" = "409" ] || { cat "$WORK/reload.json"; echo "FAIL: v3-bad reload got HTTP $code, want 409"; exit 1; }
grep -q 'canary' "$WORK/reload.json" || { echo "FAIL: v3-bad rejection not a canary error: $(cat "$WORK/reload.json")"; exit 1; }

echo "-- reload to v4-corrupt (must be rejected by checksum, 409)"
code="$(reload '{"version":"v4-corrupt"}')"
[ "$code" = "409" ] || { cat "$WORK/reload.json"; echo "FAIL: v4-corrupt reload got HTTP $code, want 409"; exit 1; }
grep -q 'checksum' "$WORK/reload.json" || { echo "FAIL: v4-corrupt rejection not a checksum error: $(cat "$WORK/reload.json")"; exit 1; }

echo "-- /v1/model must show v2 active with one swap and one canary rejection"
curl -s "$BASE/v1/model" >"$WORK/model.json"
grep -q '"version":"v2"' "$WORK/model.json" || { echo "FAIL: /v1/model: $(cat "$WORK/model.json")"; exit 1; }
grep -q '"swap_total":1' "$WORK/model.json" || { echo "FAIL: swap_total: $(cat "$WORK/model.json")"; exit 1; }
grep -q '"canary_rejected":1' "$WORK/model.json" || { echo "FAIL: canary_rejected: $(cat "$WORK/model.json")"; exit 1; }

echo "== waiting for loadgen (zero non-200s required) =="
if ! wait "$LOADGEN_PID"; then
    cat "$WORK/loadgen.json"
    echo "FAIL: loadgen observed failed requests during the swaps"
    exit 1
fi
grep -o '"ok": [0-9]*' "$WORK/loadgen.json" | head -1 || true
if [ -n "$ART" ]; then
    cp "$WORK/loadgen.json" "$ART/serve-hotswap_$(date -u +%Y-%m-%d).json"
    echo "   loadgen report -> $ART/serve-hotswap_$(date -u +%Y-%m-%d).json"
fi
echo "swap-smoke OK: hot swap under traffic with zero failed requests; bad candidates rejected with rollback"
