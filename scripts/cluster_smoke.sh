#!/usr/bin/env bash
# Cluster smoke test: 3 enmc-shard workers × 2 replicas behind an
# enmc-serve cluster router, under loadgen traffic —
#
#   SIGKILL one replica mid-run      -> zero non-200s, partial:false
#                                       (failover absorbs the loss)
#   SIGKILL BOTH replicas of shard 1 -> still HTTP 200, but
#                                       partial:true + missing_shards:[1]
#                                       (degrade, don't fail)
#   restart shard 1's replicas       -> partial:false again, loadgen
#                                       clean (recovery needs no probe
#                                       round-trip: ejection only
#                                       reorders failover)
#
# Exercises: multi-process shard bring-up from one deterministic demo
# model, router Dial/geometry validation, replica failover under
# SIGKILL, partial-failure degradation with the missing shard listed,
# and re-admission after restart.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
PIDS=()
# Benchmark governance: when SMOKE_ARTIFACTS names a directory, the
# loadgen JSON report lands there (where enmc-report ingests it, and
# where CI uploads it as an artifact). SMOKE_DURATION stretches the
# loadgen runs for nightly full-length passes.
ART="${SMOKE_ARTIFACTS:-}"
if [ -n "$ART" ]; then
    mkdir -p "$ART"
    ART="$(cd "$ART" && pwd)" # scripts cd around; artifact dir must stay absolute
fi
DUR_MAIN="${SMOKE_DURATION:-6s}"
DUR_POST="${SMOKE_DURATION:-3s}"
cleanup() {
    for pid in ${PIDS[@]+"${PIDS[@]}"}; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in ${PIDS[@]+"${PIDS[@]}"}; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

# Small deterministic demo model: every worker regenerates the same
# global classifier from the same seed, so the shards tile one model.
CLASSES=480
DIM=64

echo "== building =="
cd "$ROOT"
go build -o "$WORK/enmc-shard" ./cmd/enmc-shard
go build -o "$WORK/enmc-serve" ./cmd/enmc-serve
go build -o "$WORK/enmc-loadgen" ./cmd/enmc-loadgen
cd "$WORK"

start_shard() { # start_shard <shard-idx> <replica-name> <addr> [extra flags...]
    local idx=$1 rep=$2 addr=$3
    shift 3
    rm -f "$WORK/port-$idx-$rep"
    ./enmc-shard -shard-index "$idx" -shard-count 3 \
        -demo-classes "$CLASSES" -demo-dim "$DIM" -epochs 3 \
        -addr "$addr" -port-file "$WORK/port-$idx-$rep" "$@" \
        >>"$WORK/shard-$idx-$rep.log" 2>&1 &
    local pid=$!
    PIDS+=("$pid")
    eval "SHARD_${idx}_${rep}_PID=$pid"
}

wait_port() { # wait_port <file> <what>
    for _ in $(seq 1 200); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "FAIL: $2 never wrote its port file"; exit 1
}

echo "== starting 3 shards x 2 replicas =="
for idx in 0 1 2; do
    for rep in a b; do
        start_shard "$idx" "$rep" 127.0.0.1:0
    done
done
for idx in 0 1 2; do
    for rep in a b; do
        wait_port "$WORK/port-$idx-$rep" "shard $idx replica $rep"
        eval "PORT_${idx}_${rep}=$(cat "$WORK/port-$idx-$rep")"
    done
done

SPEC="127.0.0.1:$PORT_0_a,127.0.0.1:$PORT_0_b;127.0.0.1:$PORT_1_a,127.0.0.1:$PORT_1_b;127.0.0.1:$PORT_2_a,127.0.0.1:$PORT_2_b"
echo "   shard map: $SPEC"

echo "== starting enmc-serve router =="
./enmc-serve -cluster "$SPEC" -cluster-health-interval 100ms \
    -addr 127.0.0.1:0 -port-file "$WORK/port-serve" \
    >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
PIDS+=("$SERVE_PID")
wait_port "$WORK/port-serve" "enmc-serve"
PORT="$(cat "$WORK/port-serve")"
BASE="http://127.0.0.1:$PORT"
echo "   routing on $BASE"

VEC="$(seq 1 "$DIM" | awk '{printf "%s0.%02d", (NR>1?",":""), $1%100}')"
classify() { # -> echoes HTTP status; body lands in $WORK/resp.json
    curl -s -o "$WORK/resp.json" -w '%{http_code}' \
        -X POST -H 'Content-Type: application/json' \
        -d "{\"h\":[$VEC],\"top_k\":3}" "$BASE/v1/classify"
}

echo "-- warm check: full merge, partial:false"
code="$(classify)"
[ "$code" = "200" ] || { cat "$WORK/resp.json"; echo "FAIL: warm classify got HTTP $code"; exit 1; }
grep -q '"partial":false' "$WORK/resp.json" || { echo "FAIL: warm response not full: $(cat "$WORK/resp.json")"; exit 1; }

echo "== phase 1: SIGKILL one replica under traffic (must stay clean) =="
./enmc-loadgen -addr "127.0.0.1:$PORT" -dim "$DIM" -duration "$DUR_MAIN" -concurrency 4 \
    -fail-on-error -fail-on-partial >"$WORK/loadgen1.log" 2>&1 &
LOADGEN_PID=$!
sleep 2
echo "-- SIGKILL shard 0 replica b (pid $SHARD_0_b_PID)"
kill -9 "$SHARD_0_b_PID" 2>/dev/null || true
if ! wait "$LOADGEN_PID"; then
    cat "$WORK/loadgen1.log"
    echo "FAIL: killing one replica caused failed or partial responses"
    exit 1
fi
grep -E "ok:|errors:" "$WORK/loadgen1.log" || true

echo "== phase 2: SIGKILL both replicas of shard 1 (must degrade to partial) =="
kill -9 "$SHARD_1_a_PID" "$SHARD_1_b_PID" 2>/dev/null || true
sleep 0.5
code="$(classify)"
[ "$code" = "200" ] || { cat "$WORK/resp.json"; echo "FAIL: dead shard turned into HTTP $code, want degraded 200"; exit 1; }
grep -q '"partial":true' "$WORK/resp.json" || { echo "FAIL: dead shard not flagged partial: $(cat "$WORK/resp.json")"; exit 1; }
grep -q '"missing_shards":\[1\]' "$WORK/resp.json" || { echo "FAIL: missing shard list wrong: $(cat "$WORK/resp.json")"; exit 1; }
echo "-- degraded correctly: $(grep -o '"partial":true,"missing_shards":\[1\]' "$WORK/resp.json")"

echo "== phase 3: restart shard 1 replicas (must recover to full merges) =="
start_shard 1 a "127.0.0.1:$PORT_1_a"
start_shard 1 b "127.0.0.1:$PORT_1_b"
wait_port "$WORK/port-1-a" "restarted shard 1 replica a"
wait_port "$WORK/port-1-b" "restarted shard 1 replica b"
recovered=""
for _ in $(seq 1 100); do
    code="$(classify)"
    if [ "$code" = "200" ] && grep -q '"partial":false' "$WORK/resp.json"; then
        recovered=yes
        break
    fi
    sleep 0.2
done
[ -n "$recovered" ] || { echo "FAIL: cluster never recovered after restart: $(cat "$WORK/resp.json")"; exit 1; }

echo "-- post-recovery loadgen (must stay clean; JSON report for enmc-report)"
if ! ./enmc-loadgen -addr "127.0.0.1:$PORT" -dim "$DIM" -duration "$DUR_POST" -concurrency 4 \
    -fail-on-error -fail-on-partial -log-json -scenario cluster-3x2 \
    >"$WORK/loadgen-cluster.json" 2>"$WORK/loadgen2.err"; then
    cat "$WORK/loadgen-cluster.json" "$WORK/loadgen2.err"
    echo "FAIL: recovered cluster still failing or partial"
    exit 1
fi
grep -o '"ok": [0-9]*' "$WORK/loadgen-cluster.json" | head -1 || true
if [ -n "$ART" ]; then
    cp "$WORK/loadgen-cluster.json" "$ART/cluster-3x2_$(date -u +%Y-%m-%d).json"
    echo "   loadgen report -> $ART/cluster-3x2_$(date -u +%Y-%m-%d).json"
fi

echo "== phase 4: mixed codecs (one JSON-only worker behind a binary-preferring router) =="
# Restart shard 2 replica b pinned to the JSON wire — the router keeps
# preferring the binary frame everywhere else and must negotiate JSON
# with this one replica transparently (advertised codecs at probe time,
# 415 fallback mid-flight). Merges must stay bit-identical to an
# all-JSON router over the same shard map.
kill -9 "$SHARD_2_b_PID" 2>/dev/null || true
start_shard 2 b "127.0.0.1:$PORT_2_b" -wire json
wait_port "$WORK/port-2-b" "restarted JSON-wire shard 2 replica b"
sleep 0.5

echo "-- starting a second (all-JSON, -wire json) router as the reference"
./enmc-serve -cluster "$SPEC" -cluster-health-interval 100ms -wire json \
    -addr 127.0.0.1:0 -port-file "$WORK/port-serve-json" \
    >"$WORK/serve-json.log" 2>&1 &
PIDS+=("$!")
wait_port "$WORK/port-serve-json" "enmc-serve (json wire)"
PORT_JSON="$(cat "$WORK/port-serve-json")"

for k in 1 2 3 5 7; do
    code="$(curl -s -o "$WORK/resp-bin.json" -w '%{http_code}' \
        -X POST -H 'Content-Type: application/json' \
        -d "{\"h\":[$VEC],\"top_k\":$k}" "$BASE/v1/classify")"
    [ "$code" = "200" ] || { cat "$WORK/resp-bin.json"; echo "FAIL: mixed-codec classify (top_k=$k) got HTTP $code"; exit 1; }
    grep -q '"partial":false' "$WORK/resp-bin.json" || { echo "FAIL: mixed-codec response not full: $(cat "$WORK/resp-bin.json")"; exit 1; }
    code="$(curl -s -o "$WORK/resp-json.json" -w '%{http_code}' \
        -X POST -H 'Content-Type: application/json' \
        -d "{\"h\":[$VEC],\"top_k\":$k}" "http://127.0.0.1:$PORT_JSON/v1/classify")"
    [ "$code" = "200" ] || { cat "$WORK/resp-json.json"; echo "FAIL: json-wire classify (top_k=$k) got HTTP $code"; exit 1; }
    # queue_us is a per-request timing observation — the only field
    # allowed to differ. Classes and logits must match bit-for-bit.
    sed 's/"queue_us":[0-9]*/"queue_us":X/' "$WORK/resp-bin.json" >"$WORK/resp-bin-norm.json"
    sed 's/"queue_us":[0-9]*/"queue_us":X/' "$WORK/resp-json.json" >"$WORK/resp-json-norm.json"
    cmp -s "$WORK/resp-bin-norm.json" "$WORK/resp-json-norm.json" || {
        echo "FAIL: mixed-codec merge differs from all-JSON merge (top_k=$k)"
        diff "$WORK/resp-bin-norm.json" "$WORK/resp-json-norm.json" || true
        exit 1
    }
done
echo "-- mixed-codec merges bit-identical to all-JSON merges (top_k 1,2,3,5,7)"

echo "-- mixed-codec loadgen (must stay clean)"
if ! ./enmc-loadgen -addr "127.0.0.1:$PORT" -dim "$DIM" -duration "$DUR_POST" -concurrency 4 \
    -fail-on-error -fail-on-partial >"$WORK/loadgen-mixed.log" 2>&1; then
    cat "$WORK/loadgen-mixed.log"
    echo "FAIL: mixed-codec cluster produced failed or partial responses"
    exit 1
fi
grep -E "ok:|errors:|wire:" "$WORK/loadgen-mixed.log" || true

echo "cluster-smoke OK: replica failover clean, dead shard degraded to partial:true [1], restart recovered full merges, mixed-codec merges bit-identical"
