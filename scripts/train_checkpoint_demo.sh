#!/usr/bin/env bash
# Checkpoint/resume demo: run a registry training job that stops
# itself halfway (-stop-after), verify the checkpoint exists and the
# version is NOT published, then rerun the same command — it resumes
# from the checkpoint, finishes the remaining epochs, publishes the
# version atomically, and removes the checkpoint.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== building =="
cd "$ROOT"
go build -o "$WORK/enmc-train" ./cmd/enmc-train

echo "== generating demo model =="
cd "$WORK"
./enmc-train -demo >/dev/null

REG="$WORK/models"
TRAIN=(./enmc-train -classifier demo-cls.bin -features demo-feats.bin
       -registry "$REG" -version v1 -epochs 6 -checkpoint-every 2 -k 32)

echo "== phase 1: train with -stop-after 2 (simulated interruption) =="
"${TRAIN[@]}" -stop-after 2
[ -f "$REG/.ckpt/v1/state.json" ] || { echo "FAIL: no checkpoint after interruption"; exit 1; }
[ ! -d "$REG/v1" ] || { echo "FAIL: interrupted run published"; exit 1; }
echo "   checkpoint present, version unpublished — as expected"

echo "== phase 2: rerun the same command (resumes from checkpoint) =="
"${TRAIN[@]}"
[ -f "$REG/v1/manifest.json" ] || { echo "FAIL: resumed run did not publish"; exit 1; }
[ ! -d "$REG/.ckpt/v1" ] || { echo "FAIL: checkpoint survived publication"; exit 1; }
grep -q '"resumed": true' "$REG/v1/manifest.json" || { echo "FAIL: manifest does not record the resume"; exit 1; }
echo "   published with resumed=true, checkpoint cleaned up"

echo "train-checkpoint OK: interrupt -> checkpoint -> resume -> atomic publish"
