#!/usr/bin/env bash
# Multi-tenant QoS smoke test: one enmc-serve process, a registry with
# two published versions, and a tenant config with an interactive
# tenant (alice), a saturating batch tenant (bob), and a tenant pinned
# to the older model version (frozen). Two concurrent `enmc-loadgen
# -tenant-mix` runs — a paced interactive stream and a saturating
# batch flood — drive both classes at once while the script asserts
# the QoS contract:
#
#   1. pressure attribution — the batch class absorbs >= 95% of all
#      shed/degrade/throttle events (scraped from the per-tenant
#      labeled counters on /metrics); the interactive tenant sees
#      zero 429s, zero 5xx, and a p99 inside the budget;
#   2. hot reload — mid-load, the tenant config is rewritten to
#      crush bob's quota and SIGHUP'd in: the server must flip the
#      quota (bob starts drawing 429s from the token bucket) with
#      zero dropped in-flight requests (no transport errors in the
#      loadgen report, interactive still all-200);
#   3. pinning — requests keyed as frozen are served by model v1
#      while alice is served by the active v2: two distinct
#      model_version values from one process.
#
# Exercises: API-key tenant resolution, per-class weighted-fair
# queues, class-aware shed/degrade, token-bucket quotas with real
# Retry-After, SIGHUP tenant-config reload, per-tenant pinned-model
# routing, per-tenant labeled telemetry, and the loadgen -tenant-mix
# report.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
SERVE_PID=""
ART="${SMOKE_ARTIFACTS:-}"
if [ -n "$ART" ]; then
    mkdir -p "$ART"
    ART="$(cd "$ART" && pwd)"
fi
DUR="${SMOKE_DURATION:-10s}"
P99_BUDGET_MS="${QOS_P99_BUDGET_MS:-500}"
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building =="
cd "$ROOT"
go build -o "$WORK/enmc-train" ./cmd/enmc-train
go build -o "$WORK/enmc-serve" ./cmd/enmc-serve
go build -o "$WORK/enmc-loadgen" ./cmd/enmc-loadgen

echo "== generating demo model, publishing v1 and v2 =="
cd "$WORK"
./enmc-train -demo >/dev/null
REG="$WORK/models"
./enmc-train -classifier demo-cls.bin -features demo-feats.bin \
    -registry "$REG" -version v1 -epochs 2 -k 32 >/dev/null
./enmc-train -classifier demo-cls.bin -features demo-feats.bin \
    -registry "$REG" -version v2 -parent v1 -epochs 3 -k 32 >/dev/null

# Tenant config, generation 1: everyone has quota headroom, so the
# only pressure source is the batch flood against the tiny queue.
# Keys equal names because loadgen -tenant-mix sends the tenant name
# as its API key.
TENANTS="$WORK/tenants.json"
cat >"$TENANTS" <<'JSON'
{
  "tenants": [
    {"name": "alice",  "key": "alice",  "class": "interactive", "rate": 5000, "burst": 500},
    {"name": "bob",    "key": "bob",    "class": "batch",       "rate": 5000, "burst": 500},
    {"name": "frozen", "key": "frozen", "class": "standard",    "rate": 100,  "model_version": "v1"}
  ]
}
JSON

echo "== starting enmc-serve (v2 active, tiny per-class queue) =="
./enmc-serve -model-root "$REG" -model-version v2 -canary-floor 0.5 \
    -tenants "$TENANTS" \
    -queue-cap 8 -max-batch 8 -flush-workers 1 -max-delay 2ms \
    -addr 127.0.0.1:0 -port-file "$WORK/port" \
    -debug-addr 127.0.0.1:0 -debug-port-file "$WORK/dbgport" \
    >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && [ -s "$WORK/dbgport" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.log"; echo "FAIL: server died"; exit 1; }
    sleep 0.1
done
PORT="$(cat "$WORK/port")"
DBGPORT="$(cat "$WORK/dbgport")"
BASE="http://127.0.0.1:$PORT"
echo "   serving on $BASE (metrics on :$DBGPORT)"

echo "== concurrent load: paced interactive alice vs saturating batch bob =="
# Alice is a paced open-loop stream — the latency-sensitive tenant the
# contract protects. Bob is a 32-worker closed-loop flood against an
# 8-slot batch queue — guaranteed shed (queue overflow) and degrade
# (queue depth past the watermark) on his own class.
./enmc-loadgen -addr "127.0.0.1:$PORT" -dim 128 -duration "$DUR" -rate 100 \
    -tenant-mix "alice:interactive:1" \
    -log-json -scenario qos-interactive >"$WORK/alice-load.json" 2>&1 &
ALICE_PID=$!
./enmc-loadgen -addr "127.0.0.1:$PORT" -dim 128 -duration "$DUR" -concurrency 32 \
    -tenant-mix "bob:batch:1" \
    -log-json -scenario qos-batch-flood >"$WORK/bob-load.json" 2>&1 &
BOB_PID=$!

# Mid-load: flip bob's quota to a trickle and SIGHUP the config in.
# The reload must not drop anything in flight.
sleep 4
cat >"$TENANTS" <<'JSON'
{
  "tenants": [
    {"name": "alice",  "key": "alice",  "class": "interactive", "rate": 5000, "burst": 500},
    {"name": "bob",    "key": "bob",    "class": "batch",       "rate": 5,    "burst": 1},
    {"name": "frozen", "key": "frozen", "class": "standard",    "rate": 100,  "model_version": "v1"}
  ]
}
JSON
kill -HUP "$SERVE_PID"
echo "-- SIGHUP sent: bob's quota flipped 5000/s -> 5/s mid-load"

if ! wait "$ALICE_PID"; then
    cat "$WORK/alice-load.json"
    echo "FAIL: interactive loadgen run failed"
    exit 1
fi
if ! wait "$BOB_PID"; then
    cat "$WORK/bob-load.json"
    echo "FAIL: batch loadgen run failed"
    exit 1
fi

grep -q 'SIGHUP tenant reload' "$WORK/serve.log" \
    || { tail -20 "$WORK/serve.log"; echo "FAIL: server never logged the tenant reload"; exit 1; }

# tenant_field <file> <tenant> <json-key>: pull one per-tenant value
# out of a loadgen -log-json report (indented JSON, "tenant" leads
# each entry of the tenants array).
tenant_field() {
    awk -v tenant="$2" -v field="\"$3\":" '
        /"tenant": "/ { cur = $0; gsub(/.*"tenant": "|".*/, "", cur) }
        index($0, field) && cur == tenant {
            v = $0; sub(/.*: /, "", v); sub(/,$/, "", v); print v; exit
        }' "$1"
}

echo "== asserting the QoS contract from the loadgen reports =="
ALICE_REQ="$(tenant_field "$WORK/alice-load.json" alice requests)"
ALICE_OK="$(tenant_field "$WORK/alice-load.json" alice ok)"
ALICE_429="$(tenant_field "$WORK/alice-load.json" alice status_429)"
ALICE_503="$(tenant_field "$WORK/alice-load.json" alice status_503)"
ALICE_OTHER="$(tenant_field "$WORK/alice-load.json" alice other_errors)"; ALICE_OTHER="${ALICE_OTHER:-0}"
ALICE_P99="$(tenant_field "$WORK/alice-load.json" alice p99_ms)"
BOB_REQ="$(tenant_field "$WORK/bob-load.json" bob requests)"
BOB_429="$(tenant_field "$WORK/bob-load.json" bob status_429)"
echo "   alice: req=$ALICE_REQ ok=$ALICE_OK 429=$ALICE_429 503=$ALICE_503 other=$ALICE_OTHER p99=${ALICE_P99}ms"
echo "   bob:   req=$BOB_REQ 429=$BOB_429"

[ "$ALICE_REQ" -gt 0 ] || { echo "FAIL: alice sent no traffic"; exit 1; }
[ "$ALICE_429" = "0" ] || { echo "FAIL: interactive tenant drew $ALICE_429 429s"; exit 1; }
[ "$ALICE_503" = "0" ] || { echo "FAIL: interactive tenant drew $ALICE_503 503s"; exit 1; }
[ "$ALICE_OTHER" = "0" ] || { echo "FAIL: interactive tenant had $ALICE_OTHER transport/other errors"; exit 1; }
[ "$ALICE_OK" = "$ALICE_REQ" ] || { echo "FAIL: alice ok=$ALICE_OK != req=$ALICE_REQ"; exit 1; }
awk -v p99="$ALICE_P99" -v budget="$P99_BUDGET_MS" \
    'BEGIN { exit (p99+0 <= budget+0) ? 0 : 1 }' \
    || { echo "FAIL: interactive p99 ${ALICE_P99}ms over the ${P99_BUDGET_MS}ms budget"; exit 1; }
[ "$BOB_429" -gt 0 ] || { echo "FAIL: the saturating batch tenant never drew a 429 (quota flip + queue pressure both missed?)"; exit 1; }
# Zero dropped in-flight requests across the SIGHUP: neither loadgen
# saw a transport-level failure anywhere in the run.
for f in "$WORK/alice-load.json" "$WORK/bob-load.json"; do
    if grep -q '"transport":' "$f"; then
        cat "$f"
        echo "FAIL: transport errors in $f (dropped in-flight requests?)"
        exit 1
    fi
done

echo "== asserting pressure attribution on /metrics =="
curl -s "http://127.0.0.1:$DBGPORT/metrics" >"$WORK/metrics.txt"
grep -q 'tenant_admitted{class="interactive",tenant="alice"}' "$WORK/metrics.txt" \
    || { echo "FAIL: no labeled admitted counter for alice"; exit 1; }
# >= 95% of shed+degraded+throttled events must carry class="batch".
awk '
    /^tenant_(shed|degraded|throttled)\{/ {
        total += $2
        if ($0 ~ /class="batch"/) batch += $2
    }
    END {
        if (total == 0) { print "FAIL: no pressure events recorded at all"; exit 1 }
        frac = batch / total
        printf "   pressure events: %d total, %d batch-class (%.1f%%)\n", total, batch, 100 * frac
        if (frac < 0.95) { print "FAIL: batch class absorbed less than 95% of the pressure"; exit 1 }
    }' "$WORK/metrics.txt"

echo "== asserting per-tenant pinned-model routing =="
H="$(awk 'BEGIN { printf "["; for (i = 0; i < 128; i++) printf "%s0.1", (i ? "," : ""); printf "]" }')"
curl -s -H 'Content-Type: application/json' -H 'X-Enmc-Api-Key: alice' \
    -d "{\"h\":$H,\"top_k\":1}" "$BASE/v1/classify" >"$WORK/alice.json"
curl -s -H 'Content-Type: application/json' -H 'X-Enmc-Api-Key: frozen' \
    -d "{\"h\":$H,\"top_k\":1}" "$BASE/v1/classify" >"$WORK/frozen.json"
grep -q '"model_version":"v2"' "$WORK/alice.json" \
    || { cat "$WORK/alice.json"; echo "FAIL: alice not served by active v2"; exit 1; }
grep -q '"model_version":"v1"' "$WORK/frozen.json" \
    || { cat "$WORK/frozen.json"; echo "FAIL: frozen not served by pinned v1"; exit 1; }
grep -q '"tenant":"frozen"' "$WORK/frozen.json" \
    || { cat "$WORK/frozen.json"; echo "FAIL: response does not carry the tenant identity"; exit 1; }
echo "   alice -> v2 (active), frozen -> v1 (pinned): two versions from one process"

echo "== asserting /v1/tenants =="
curl -s "$BASE/v1/tenants" >"$WORK/tenants-out.json"
grep -q '"tenant": *"alice"' "$WORK/tenants-out.json" \
    || { cat "$WORK/tenants-out.json"; echo "FAIL: /v1/tenants missing alice"; exit 1; }
grep -q '"tenant": *"bob"' "$WORK/tenants-out.json" \
    || { cat "$WORK/tenants-out.json"; echo "FAIL: /v1/tenants missing bob"; exit 1; }

if [ -n "$ART" ]; then
    cp "$WORK/alice-load.json" "$ART/qos-interactive_$(date -u +%Y-%m-%d).json"
    cp "$WORK/bob-load.json" "$ART/qos-batch-flood_$(date -u +%Y-%m-%d).json"
    echo "   loadgen reports -> $ART/qos-{interactive,batch-flood}_$(date -u +%Y-%m-%d).json"
fi
echo "qos-smoke OK: batch class absorbed the pressure, interactive stayed clean through a SIGHUP quota flip, pinned + active model versions served side by side"
