#!/usr/bin/env bash
# Streaming-decode smoke test: POST /v1/decode end-to-end —
#
#   phase 1 (single node)  -> greedy + beam sessions over NDJSON under
#                             loadgen (zero errors, zero cut streams),
#                             plus one SSE session checked frame by
#                             frame and a session-cap 429 probe
#   phase 2 (3x2 cluster)  -> -decode on the router (per-token scatter
#                             with session affinity), SIGKILL one
#                             replica mid-session: every in-flight
#                             stream must survive via failover re-pin
#                             (cluster_session_repin > 0 on /metrics,
#                             zero dropped streams)
#
# Exercises: session create/stream/auto-close, beam decoding, SSE and
# NDJSON framing, the 429 admission path, the cluster decode scorer's
# sticky replica pin and its failover re-pin under SIGKILL.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
PIDS=()
# Benchmark governance: when SMOKE_ARTIFACTS names a directory, the
# loadgen JSON reports land there (where enmc-report ingests them, and
# where CI uploads them as artifacts).
ART="${SMOKE_ARTIFACTS:-}"
if [ -n "$ART" ]; then
    mkdir -p "$ART"
    ART="$(cd "$ART" && pwd)" # scripts cd around; artifact dir must stay absolute
fi
DUR_MAIN="${SMOKE_DURATION:-6s}"
DUR_POST="${SMOKE_DURATION:-3s}"
cleanup() {
    for pid in ${PIDS[@]+"${PIDS[@]}"}; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in ${PIDS[@]+"${PIDS[@]}"}; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

# Same deterministic demo model as the cluster smoke: the single-node
# server trains it locally; in phase 2 every worker regenerates it
# from the same seed and the router regenerates the decoder dynamics
# from matching -demo-* flags.
CLASSES=480
DIM=64

echo "== building =="
cd "$ROOT"
go build -o "$WORK/enmc-shard" ./cmd/enmc-shard
go build -o "$WORK/enmc-serve" ./cmd/enmc-serve
go build -o "$WORK/enmc-loadgen" ./cmd/enmc-loadgen
cd "$WORK"

wait_port() { # wait_port <file> <what>
    for _ in $(seq 1 200); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "FAIL: $2 never wrote its port file"; exit 1
}

echo "== phase 1: single-node decode =="
./enmc-serve -decode -demo-classes "$CLASSES" -demo-dim "$DIM" -epochs 3 \
    -decode-maxlen 24 \
    -addr 127.0.0.1:0 -port-file "$WORK/port-serve-local" \
    >"$WORK/serve-local.log" 2>&1 &
SERVE_LOCAL_PID=$!
PIDS+=("$SERVE_LOCAL_PID")
wait_port "$WORK/port-serve-local" "enmc-serve (local)"
PORT="$(cat "$WORK/port-serve-local")"
BASE="http://127.0.0.1:$PORT"
echo "   serving on $BASE"

VEC="$(seq 1 "$DIM" | awk '{printf "%s0.%02d", (NR>1?",":""), $1%100}')"

echo "-- SSE session: token frames then a done frame"
curl -s -N -X POST -H 'Content-Type: application/json' \
    -d "{\"h0\":[$VEC],\"max_tokens\":5}" "$BASE/v1/decode" >"$WORK/sse.txt"
tok="$(grep -c '^event: token' "$WORK/sse.txt" || true)"
[ "$tok" = "5" ] || { cat "$WORK/sse.txt"; echo "FAIL: SSE session streamed $tok token frames, want 5"; exit 1; }
grep -q '^event: done' "$WORK/sse.txt" || { cat "$WORK/sse.txt"; echo "FAIL: SSE session never sent its done frame"; exit 1; }

echo "-- greedy loadgen (NDJSON, closed loop; zero errors, zero cut streams)"
if ! ./enmc-loadgen -addr "127.0.0.1:$PORT" -dim "$DIM" -decode -duration "$DUR_MAIN" \
    -concurrency 4 -fail-on-error -fail-on-dropped >"$WORK/loadgen-greedy.log" 2>&1; then
    cat "$WORK/loadgen-greedy.log"
    echo "FAIL: single-node greedy decode load produced errors or dropped streams"
    exit 1
fi
grep -E "ok:|ttft" "$WORK/loadgen-greedy.log" || true

echo "-- beam loadgen (width 4)"
if ! ./enmc-loadgen -addr "127.0.0.1:$PORT" -dim "$DIM" -decode -decode-mode beam -decode-width 4 \
    -duration "$DUR_POST" -concurrency 4 -fail-on-error -fail-on-dropped \
    -log-json -scenario decode-serve >"$WORK/loadgen-decode.json" 2>"$WORK/loadgen-beam.err"; then
    cat "$WORK/loadgen-decode.json" "$WORK/loadgen-beam.err"
    echo "FAIL: single-node beam decode load produced errors or dropped streams"
    exit 1
fi
grep -o '"tokens": [0-9]*' "$WORK/loadgen-decode.json" | head -1 || true
if [ -n "$ART" ]; then
    cp "$WORK/loadgen-decode.json" "$ART/decode-serve_$(date -u +%Y-%m-%d).json"
    echo "   loadgen report -> $ART/decode-serve_$(date -u +%Y-%m-%d).json"
fi

echo "-- session-cap probe: a tiny-cap server must answer 429 + Retry-After"
./enmc-serve -decode -demo-classes "$CLASSES" -demo-dim "$DIM" -epochs 3 \
    -decode-max-sessions 1 -decode-ttl 30s -decode-maxlen 24 \
    -addr 127.0.0.1:0 -port-file "$WORK/port-serve-cap" \
    >"$WORK/serve-cap.log" 2>&1 &
PIDS+=("$!")
wait_port "$WORK/port-serve-cap" "enmc-serve (session cap)"
CAP_PORT="$(cat "$WORK/port-serve-cap")"
# Open one session and decode a single token of its 24 — unfinished,
# so it holds its slot (idling under the 30s TTL, not auto-closed)...
curl -s -N -X POST -H 'Content-Type: application/json' \
    -d "{\"h0\":[$VEC],\"max_tokens\":1,\"stream\":\"ndjson\"}" \
    "http://127.0.0.1:$CAP_PORT/v1/decode" >/dev/null
# ...then try to open a second: the cap of 1 must refuse it.
code="$(curl -s -o "$WORK/cap.json" -D "$WORK/cap.hdr" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    -d "{\"h0\":[$VEC],\"max_tokens\":1}" \
    "http://127.0.0.1:$CAP_PORT/v1/decode")"
[ "$code" = "429" ] || { cat "$WORK/cap.json"; echo "FAIL: over-cap session got HTTP $code, want 429"; exit 1; }
grep -qi '^Retry-After:' "$WORK/cap.hdr" || { cat "$WORK/cap.hdr"; echo "FAIL: 429 without Retry-After"; exit 1; }
echo "   over-cap session refused with 429 + Retry-After"

kill "$SERVE_LOCAL_PID" 2>/dev/null || true

echo "== phase 2: 3x2 cluster decode with mid-session replica SIGKILL =="
start_shard() { # start_shard <shard-idx> <replica-name>
    local idx=$1 rep=$2
    rm -f "$WORK/port-$idx-$rep"
    ./enmc-shard -shard-index "$idx" -shard-count 3 \
        -demo-classes "$CLASSES" -demo-dim "$DIM" -epochs 3 \
        -addr 127.0.0.1:0 -port-file "$WORK/port-$idx-$rep" \
        >>"$WORK/shard-$idx-$rep.log" 2>&1 &
    local pid=$!
    PIDS+=("$pid")
    eval "SHARD_${idx}_${rep}_PID=$pid"
}
for idx in 0 1 2; do
    for rep in a b; do
        start_shard "$idx" "$rep"
    done
done
for idx in 0 1 2; do
    for rep in a b; do
        wait_port "$WORK/port-$idx-$rep" "shard $idx replica $rep"
        eval "PORT_${idx}_${rep}=$(cat "$WORK/port-$idx-$rep")"
    done
done
SPEC="127.0.0.1:$PORT_0_a,127.0.0.1:$PORT_0_b;127.0.0.1:$PORT_1_a,127.0.0.1:$PORT_1_b;127.0.0.1:$PORT_2_a,127.0.0.1:$PORT_2_b"
echo "   shard map: $SPEC"

./enmc-serve -cluster "$SPEC" -cluster-health-interval 100ms \
    -decode -demo-classes "$CLASSES" -demo-dim "$DIM" -decode-maxlen 24 \
    -addr 127.0.0.1:0 -port-file "$WORK/port-serve-cluster" \
    -debug-addr 127.0.0.1:0 -debug-port-file "$WORK/port-debug" \
    >"$WORK/serve-cluster.log" 2>&1 &
PIDS+=("$!")
wait_port "$WORK/port-serve-cluster" "enmc-serve (cluster)"
wait_port "$WORK/port-debug" "enmc-serve debug listener"
CPORT="$(cat "$WORK/port-serve-cluster")"
DPORT="$(cat "$WORK/port-debug")"
echo "   routing on http://127.0.0.1:$CPORT (metrics on :$DPORT)"

echo "-- decode loadgen under SIGKILL of shard 0 replica b (streams must survive)"
./enmc-loadgen -addr "127.0.0.1:$CPORT" -dim "$DIM" -decode -duration "$DUR_MAIN" \
    -concurrency 4 -timeout 30s -fail-on-error -fail-on-dropped \
    -log-json -scenario decode-cluster-3x2 \
    >"$WORK/loadgen-cluster.json" 2>"$WORK/loadgen-cluster.err" &
LOADGEN_PID=$!
sleep 2
echo "-- SIGKILL shard 0 replica b (pid $SHARD_0_b_PID)"
kill -9 "$SHARD_0_b_PID" 2>/dev/null || true
if ! wait "$LOADGEN_PID"; then
    cat "$WORK/loadgen-cluster.json" "$WORK/loadgen-cluster.err"
    echo "FAIL: killing one replica dropped or failed decode streams"
    exit 1
fi
grep -o '"dropped_streams": [0-9]*' "$WORK/loadgen-cluster.json" | head -1 || true
if [ -n "$ART" ]; then
    cp "$WORK/loadgen-cluster.json" "$ART/decode-cluster-3x2_$(date -u +%Y-%m-%d).json"
    echo "   loadgen report -> $ART/decode-cluster-3x2_$(date -u +%Y-%m-%d).json"
fi

echo "-- /metrics: failover must have re-pinned at least one session"
curl -s "http://127.0.0.1:$DPORT/metrics" >"$WORK/metrics.txt"
repin="$(awk '/^cluster_session_repin /{print $2}' "$WORK/metrics.txt")"
[ -n "$repin" ] || { echo "FAIL: cluster_session_repin not exposed on /metrics"; exit 1; }
[ "$repin" -gt 0 ] || { echo "FAIL: cluster_session_repin is $repin, want > 0 after replica SIGKILL"; exit 1; }
echo "   cluster_session_repin = $repin"

echo "decode-smoke OK: SSE+NDJSON sessions clean, beam clean, 429 admission enforced, replica SIGKILL re-pinned ($repin) with zero dropped streams"
