#!/usr/bin/env bash
# Metrics/observability smoke test: 3 enmc-shard workers × 2 replicas
# behind an enmc-serve cluster router with tracing on, under loadgen —
#
#   scrape /metrics on the router AND every shard replica -> must
#       parse and validate as Prometheus text exposition 0.0.4
#       (checked by enmc-promlint, which reuses the telemetry
#       package's own parser), with the shard-RPC counter and the
#       request latency histograms advanced by the load
#   loadgen -log-json                 -> every response echoed an
#       X-Request-Id (the report's with_request_id must equal ok+err
#       counts per target)
#   capture /debug/spans              -> one propagated trace ID must
#       have spans from >= 2 process lanes (router PID 0 + shards),
#       i.e. the trace context crossed process boundaries and merged
#       into one Perfetto-loadable capture
#
# Exercises: Prometheus exposition on both binaries under live load,
# request-ID echo end to end, distributed trace propagation
# router->shard->router, and the structured loadgen report.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
PIDS=()
# Benchmark governance: with SMOKE_ARTIFACTS set, the loadgen JSON
# report and the captured Perfetto trace are copied there (enmc-report
# ingestion / CI artifact upload). SMOKE_DURATION stretches the load
# for nightly full-length passes.
ART="${SMOKE_ARTIFACTS:-}"
if [ -n "$ART" ]; then
    mkdir -p "$ART"
    ART="$(cd "$ART" && pwd)" # scripts cd around; artifact dir must stay absolute
fi
DUR="${SMOKE_DURATION:-5s}"
cleanup() {
    for pid in ${PIDS[@]+"${PIDS[@]}"}; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in ${PIDS[@]+"${PIDS[@]}"}; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

# Small deterministic demo model: every worker regenerates the same
# global classifier from the same seed, so the shards tile one model.
CLASSES=480
DIM=64

echo "== building =="
cd "$ROOT"
go build -o "$WORK/enmc-shard" ./cmd/enmc-shard
go build -o "$WORK/enmc-serve" ./cmd/enmc-serve
go build -o "$WORK/enmc-loadgen" ./cmd/enmc-loadgen
go build -o "$WORK/enmc-promlint" ./cmd/enmc-promlint
cd "$WORK"

wait_port() { # wait_port <file> <what>
    for _ in $(seq 1 200); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "FAIL: $2 never wrote its port file"; exit 1
}

echo "== starting 3 shards x 2 replicas (request logs on, JSON) =="
for idx in 0 1 2; do
    for rep in a b; do
        rm -f "$WORK/port-$idx-$rep"
        ./enmc-shard -shard-index "$idx" -shard-count 3 \
            -demo-classes "$CLASSES" -demo-dim "$DIM" -epochs 3 \
            -log-json -addr 127.0.0.1:0 -port-file "$WORK/port-$idx-$rep" \
            >>"$WORK/shard-$idx-$rep.log" 2>&1 &
        PIDS+=("$!")
    done
done
for idx in 0 1 2; do
    for rep in a b; do
        wait_port "$WORK/port-$idx-$rep" "shard $idx replica $rep"
        eval "PORT_${idx}_${rep}=$(cat "$WORK/port-$idx-$rep")"
    done
done

SPEC="127.0.0.1:$PORT_0_a,127.0.0.1:$PORT_0_b;127.0.0.1:$PORT_1_a,127.0.0.1:$PORT_1_b;127.0.0.1:$PORT_2_a,127.0.0.1:$PORT_2_b"
echo "   shard map: $SPEC"

echo "== starting enmc-serve router (tracing + JSON request log) =="
./enmc-serve -cluster "$SPEC" -cluster-health-interval 100ms \
    -trace -log-json -slow-log 100ms \
    -addr 127.0.0.1:0 -port-file "$WORK/port-serve" \
    -debug-addr 127.0.0.1:0 -debug-port-file "$WORK/port-debug" \
    >"$WORK/serve.log" 2>"$WORK/serve.reqlog" &
PIDS+=("$!")
wait_port "$WORK/port-serve" "enmc-serve"
wait_port "$WORK/port-debug" "enmc-serve debug listener"
PORT="$(cat "$WORK/port-serve")"
DEBUG_PORT="$(cat "$WORK/port-debug")"
BASE="http://127.0.0.1:$PORT"
echo "   routing on $BASE (debug on :$DEBUG_PORT)"

echo "== loadgen with JSON report =="
./enmc-loadgen -addr "127.0.0.1:$PORT" -dim "$DIM" -duration "$DUR" -concurrency 4 \
    -fail-on-error -log-json -scenario cluster-3x2-observability \
    >"$WORK/loadgen.json" 2>&1 || {
    cat "$WORK/loadgen.json"; echo "FAIL: loadgen reported errors"; exit 1; }
grep -q '"schema": "enmc-loadgen/v1"' "$WORK/loadgen.json" || {
    echo "FAIL: loadgen report carries no schema tag"; exit 1; }

OK=$(grep -o '"ok": [0-9]*' "$WORK/loadgen.json" | head -1 | awk '{print $2}')
REQS=$(grep -o '"requests": [0-9]*' "$WORK/loadgen.json" | head -1 | awk '{print $2}')
WITH_ID=$(grep -o '"with_request_id": [0-9]*' "$WORK/loadgen.json" | awk '{s+=$2} END{print s}')
echo "   loadgen: $OK/$REQS ok, $WITH_ID responses carried X-Request-Id"
[ "${OK:-0}" -gt 0 ] || { cat "$WORK/loadgen.json"; echo "FAIL: no successful requests"; exit 1; }
[ "${WITH_ID:-0}" -eq "$REQS" ] || {
    cat "$WORK/loadgen.json"
    echo "FAIL: only $WITH_ID/$REQS responses echoed X-Request-Id"; exit 1; }

echo "== scraping router /metrics (must parse, validate, and have advanced) =="
./enmc-promlint -metrics "$BASE/metrics" \
    -require "cluster_shard_rpc_total,server_http_requests,server_http_classify_ns,server_queue_wait_ns,slo_requests_window"

echo "== scraping every shard replica /metrics =="
for idx in 0 1 2; do
    for rep in a b; do
        eval "port=\$PORT_${idx}_${rep}"
        ./enmc-promlint -metrics "http://127.0.0.1:$port/metrics" \
            -require "cluster_worker_screen_requests,cluster_worker_traced_requests,go_goroutines"
    done
done

echo "== capturing a propagated distributed trace =="
curl -sf "http://127.0.0.1:$DEBUG_PORT/debug/spans" >"$WORK/trace.json"
./enmc-promlint -spans "$WORK/trace.json" -min-pids 2

if [ -n "$ART" ]; then
    # Traces live in a subdirectory so the report tool's
    # <artifacts>/*.json loadgen glob never tries to parse one.
    mkdir -p "$ART/traces"
    cp "$WORK/loadgen.json" "$ART/cluster-3x2-observability_$(date -u +%Y-%m-%d).json"
    cp "$WORK/trace.json" "$ART/traces/cluster-3x2_$(date -u +%Y-%m-%d).perfetto.json"
    echo "   artifacts -> $ART (loadgen report + Perfetto trace)"
fi

echo "== structured request logs flowed on router and shards =="
grep -q '"req_id"' "$WORK/serve.reqlog" || {
    head -5 "$WORK/serve.reqlog"; echo "FAIL: router emitted no JSON request log"; exit 1; }
grep -q '"trace_id"' "$WORK/serve.reqlog" || {
    echo "FAIL: router request log carries no trace IDs"; exit 1; }
grep -hq '"req_id"' "$WORK"/shard-*.log || {
    echo "FAIL: no shard emitted a JSON request log"; exit 1; }

echo "== GET /v1/slo reports the rolling window =="
curl -sf "$BASE/v1/slo" >"$WORK/slo.json"
grep -q '"endpoint": *"/v1/classify"' "$WORK/slo.json" || grep -q '"/v1/classify"' "$WORK/slo.json" || {
    cat "$WORK/slo.json"; echo "FAIL: SLO summary missing /v1/classify"; exit 1; }

echo "metrics-smoke OK: exposition valid on router + 6 replicas, counters advanced, request IDs echoed on every response, one trace spans >= 2 processes, request logs structured"
